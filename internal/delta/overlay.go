package delta

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/store"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

// Config parameterizes an Overlay.
type Config struct {
	// Pages is the base corpus metadata, indexed by PageID. Required:
	// it resolves target domains for filter pushdown on added links and
	// is the page side of a fold-back corpus. AddPage appends to it.
	Pages []webgraph.PageMeta
	// Dir holds the segment files. Required.
	Dir string
	// Model is the simulated disk the segment reads are charged under
	// (the same accounting every representation routes through).
	Model iosim.Model
}

// Overlay layers live link mutations over an immutable LinkStore. It
// implements store.LinkStore and store.ContextLinkStore; reads merge
//
//	base < segments (oldest..newest) < sealing memtable < active memtable
//
// with the newest layer's op per (src, dst) pair deciding the link's
// state. Pages no layer mentions are served straight from the base
// store (pass-through), so a zero-delta overlay costs one existence
// probe per lookup.
//
// Thread safety: any number of goroutines may call the read methods,
// Apply, AddPage, Seal, and the compactor's operations concurrently.
// Structural changes (seal, merge, fold) swap layer lists under a
// write lock that waits out in-flight reads, so retired segments are
// closed only when no reader can hold them.
type Overlay struct {
	dir string
	acc *iosim.Accountant

	// active memtable; swapped atomically by seal.
	mt atomic.Pointer[memtable]

	// numPages mirrors len(pages) for lock-free Apply validation.
	numPages atomic.Int64

	// mu guards base, segments, frozen, and pages. Read methods hold it
	// shared for their whole merge so structural swaps cannot retire a
	// segment mid-read.
	mu       sync.RWMutex
	base     store.LinkStore
	baseCtx  store.ContextLinkStore // base's ctx-aware path, nil if absent
	ownsBase bool                   // base came from a fold; Close it on retire
	baseDir  string                 // fold output dir of an owned base ("" otherwise)
	segments []*segment             // oldest .. newest
	frozen   []*memtable            // sealed tables not yet on disk
	pages    []webgraph.PageMeta

	// structMu serializes structural operations (seal, merge, fold), so
	// the segment list only ever changes under it and a fold's snapshot
	// stays a prefix until its swap.
	structMu sync.Mutex
	seq      atomic.Uint64

	// counters (registered as metrics funcs; segReads feeds GraphsLoaded).
	appliedOps    atomic.Int64
	seals         atomic.Int64
	compactions   atomic.Int64
	folds         atomic.Int64
	mergeBytesIn  atomic.Int64
	mergeBytesOut atomic.Int64
	segReads      atomic.Int64
	passthrough   atomic.Int64
	mergedLookups atomic.Int64
}

// NewOverlay wraps base. The segment directory is created if missing.
func NewOverlay(base store.LinkStore, cfg Config) (*Overlay, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("delta: Config.Dir required")
	}
	if len(cfg.Pages) < base.NumPages() {
		return nil, fmt.Errorf("delta: %d pages of metadata for %d-page base",
			len(cfg.Pages), base.NumPages())
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("delta: %w", err)
	}
	o := &Overlay{
		dir:   cfg.Dir,
		acc:   iosim.NewAccountant(cfg.Model),
		base:  base,
		pages: append([]webgraph.PageMeta(nil), cfg.Pages...),
	}
	o.baseCtx, _ = base.(store.ContextLinkStore)
	o.mt.Store(newMemtable())
	o.numPages.Store(int64(len(o.pages)))
	return o, nil
}

// Name implements store.LinkStore.
func (o *Overlay) Name() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.base.Name() + "+delta"
}

// NumPages implements store.LinkStore: base pages plus pages added
// through AddPage.
func (o *Overlay) NumPages() int { return int(o.numPages.Load()) }

// AddPage registers a new page (an incremental crawl discovering a
// URL) and returns its ID. Links to and from it are applied as normal
// mutations afterwards.
func (o *Overlay) AddPage(meta webgraph.PageMeta) webgraph.PageID {
	o.mu.Lock()
	o.pages = append(o.pages, meta)
	id := webgraph.PageID(len(o.pages) - 1)
	o.numPages.Store(int64(len(o.pages)))
	o.mu.Unlock()
	return id
}

// Apply records a batch of link mutations in the active memtable. It
// never blocks on structural operations — writers contend only on
// memtable shard mutexes — and is safe to call from any number of
// goroutines. On traced requests the batch becomes a "delta.apply"
// span.
func (o *Overlay) Apply(ctx context.Context, muts []Mutation) error {
	np := int(o.numPages.Load())
	for _, m := range muts {
		if err := m.Validate(np); err != nil {
			return err
		}
	}
	traced := trace.Active(ctx)
	var start time.Time
	if traced {
		start = time.Now()
	}
	for _, m := range muts {
		// A concurrent seal can retire the table between load and
		// apply; retry against the fresh one (seal guarantees a table
		// that accepted a write has it in its snapshot).
		for !o.mt.Load().apply(m) {
		}
	}
	o.appliedOps.Add(int64(len(muts)))
	if traced {
		trace.RecordSpan(ctx, "delta.apply", start, time.Since(start),
			trace.Attr{Key: "ops", Val: int64(len(muts))})
	}
	return nil
}

// scratchPool recycles base-adjacency buffers for the merged read path.
var scratchPool = sync.Pool{New: func() any { return new([]webgraph.PageID) }}

// Out implements store.LinkStore.
func (o *Overlay) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return o.OutFilteredCtx(context.Background(), p, nil, buf)
}

// OutFiltered implements store.LinkStore.
func (o *Overlay) OutFiltered(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return o.OutFilteredCtx(context.Background(), p, f, buf)
}

// OutFilteredCtx implements store.ContextLinkStore: the merged read.
// Unmutated pages pass through to the base store; mutated pages merge
// the base adjacency with the effective delta ops, removals shadowing
// base links and additions filtered by the same page/domain predicate
// the base applies. Added targets are appended in sorted order after
// the base's own (deterministic) order, so the overlay's output is
// deterministic too.
func (o *Overlay) OutFilteredCtx(ctx context.Context, p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if p < 0 || int(p) >= len(o.pages) {
		return buf, fmt.Errorf("delta: page %d out of range", p)
	}
	mt := o.mt.Load()
	touched := mt.hasPage(p)
	if !touched {
		for _, fm := range o.frozen {
			if fm.hasPage(p) {
				touched = true
				break
			}
		}
	}
	if !touched {
		for _, s := range o.segments {
			if _, ok := s.find(p); ok {
				touched = true
				break
			}
		}
	}
	baseN := o.base.NumPages()
	if !touched {
		if int(p) >= baseN {
			return buf, nil // added page without links yet
		}
		o.passthrough.Add(1)
		if o.baseCtx != nil {
			return o.baseCtx.OutFilteredCtx(ctx, p, f, buf)
		}
		if f.Empty() {
			return o.base.Out(p, buf)
		}
		return o.base.OutFiltered(p, f, buf)
	}

	o.mergedLookups.Add(1)
	// Effective ops for p: layers visited oldest to newest, later
	// layers overwriting — exactly the shadowing rule.
	ops := map[webgraph.PageID]Op{}
	for _, s := range o.segments {
		read, err := s.opsInto(ctx, p, ops)
		if err != nil {
			return buf, err
		}
		if read {
			o.segReads.Add(1)
		}
	}
	for _, fm := range o.frozen {
		fm.opsInto(p, ops)
	}
	mt.opsInto(p, ops)

	// Base adjacency (filter pushed down to the base store), with
	// removals applied and adds the base already holds deduplicated.
	if int(p) < baseN {
		sp := scratchPool.Get().(*[]webgraph.PageID)
		scratch, err := o.baseOut(ctx, p, f, (*sp)[:0])
		if err != nil {
			*sp = scratch
			scratchPool.Put(sp)
			return buf, err
		}
		for _, t := range scratch {
			if op, ok := ops[t]; ok {
				delete(ops, t)
				if op == OpRemove {
					continue
				}
			}
			buf = append(buf, t)
		}
		*sp = scratch
		scratchPool.Put(sp)
	}
	// Remaining adds, under the same filter predicate the base applies.
	addStart := len(buf)
	for d, op := range ops {
		if op != OpAdd {
			continue
		}
		if o.filterAccepts(f, d) {
			buf = append(buf, d)
		}
	}
	added := buf[addStart:]
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	return buf, nil
}

// baseOut routes one base read through the ctx-aware path when the
// base provides it.
func (o *Overlay) baseOut(ctx context.Context, p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	if o.baseCtx != nil {
		return o.baseCtx.OutFilteredCtx(ctx, p, f, buf)
	}
	if f.Empty() {
		return o.base.Out(p, buf)
	}
	return o.base.OutFiltered(p, f, buf)
}

// filterAccepts applies a filter to an added target using the overlay's
// page metadata — the same page-set-or-domain predicate the stores
// apply to decoded lists. Called with o.mu held shared.
func (o *Overlay) filterAccepts(f *store.Filter, d webgraph.PageID) bool {
	if f.Empty() {
		return true
	}
	if f.AcceptsPage(d) {
		return true
	}
	return f.AcceptsDomain(o.pages[d].Domain)
}

// Stats implements store.LinkStore: the base store's accounting plus
// the overlay's own segment I/O, with segment block reads counted as
// load units.
func (o *Overlay) Stats() store.AccessStats {
	o.mu.RLock()
	s := o.base.Stats()
	o.mu.RUnlock()
	ds := o.acc.Stats()
	s.IO.Seeks += ds.Seeks
	s.IO.BytesRead += ds.BytesRead
	s.IO.SkippedBytes += ds.SkippedBytes
	s.IO.Reads += ds.Reads
	s.IO.Stalls += ds.Stalls
	s.IO.StallNanos += ds.StallNanos
	s.GraphsLoaded += o.segReads.Load()
	return s
}

// ResetStats implements store.LinkStore.
func (o *Overlay) ResetStats() {
	o.mu.RLock()
	o.base.ResetStats()
	o.mu.RUnlock()
	o.acc.Reset()
	o.segReads.Store(0)
}

// ResetCache implements store.CacheResetter by forwarding to the base.
func (o *Overlay) ResetCache(budget int64) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if cr, ok := o.base.(store.CacheResetter); ok {
		cr.ResetCache(budget)
	}
}

// SetPace implements store.Pacer: both the base store's reads and the
// overlay's segment reads stall for their modeled cost times scale.
func (o *Overlay) SetPace(scale float64) {
	o.mu.RLock()
	if p, ok := o.base.(store.Pacer); ok {
		p.SetPace(scale)
	}
	o.mu.RUnlock()
	o.acc.SetPace(scale)
}

// SizeBytes implements store.Sized: the base representation plus the
// live delta (segments on disk, memtable in memory).
func (o *Overlay) SizeBytes() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var n int64
	if s, ok := o.base.(store.Sized); ok {
		n = s.SizeBytes()
	}
	for _, s := range o.segments {
		n += s.size
	}
	for _, fm := range o.frozen {
		n += fm.bytes()
	}
	return n + o.mt.Load().bytes()
}

// Close releases the segments and, when the current base came from a
// fold-back, the base as well (a caller-provided base is the caller's
// to close). Must not race in-flight operations.
func (o *Overlay) Close() error {
	o.structMu.Lock()
	defer o.structMu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	var first error
	for _, s := range o.segments {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	o.segments = nil
	if o.ownsBase {
		if err := o.base.Close(); err != nil && first == nil {
			first = err
		}
		o.ownsBase = false
	}
	return first
}

// DeltaStats is a point-in-time summary of the overlay's update state,
// reported by the churn experiments next to their latency rows.
type DeltaStats struct {
	MemtableEntries int64 `json:"memtable_entries"`
	MemtableBytes   int64 `json:"memtable_bytes"`
	Segments        int   `json:"segments"`
	SegmentBytes    int64 `json:"segment_bytes"`
	SegmentEntries  int64 `json:"segment_entries"`
	AppliedOps      int64 `json:"applied_ops"`
	Seals           int64 `json:"seals"`
	Compactions     int64 `json:"compactions"`
	Folds           int64 `json:"folds"`
}

// Stats returns the current update-state summary.
func (o *Overlay) DeltaStatsNow() DeltaStats {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ds := DeltaStats{
		Segments:    len(o.segments),
		AppliedOps:  o.appliedOps.Load(),
		Seals:       o.seals.Load(),
		Compactions: o.compactions.Load(),
		Folds:       o.folds.Load(),
	}
	mt := o.mt.Load()
	ds.MemtableEntries = mt.len()
	ds.MemtableBytes = mt.bytes()
	for _, fm := range o.frozen {
		ds.MemtableEntries += fm.len()
		ds.MemtableBytes += fm.bytes()
	}
	for _, s := range o.segments {
		ds.SegmentBytes += s.size
		ds.SegmentEntries += s.entries
	}
	return ds
}

// RegisterMetrics exposes the overlay's counters and gauges on a
// registry under the given prefix (conventionally "delta", giving
// delta_memtable_bytes, delta_segments, delta_compactions, and the
// merge-amplification pair delta_merge_bytes_in/out), plus the segment
// accountant's I/O counters under prefix_io.
func (o *Overlay) RegisterMetrics(reg *metrics.Registry, prefix string) {
	o.acc.RegisterMetrics(reg, prefix+"_io")
	ds := func(f func(DeltaStats) int64) func() int64 {
		return func() int64 { return f(o.DeltaStatsNow()) }
	}
	reg.GaugeFunc(prefix+"_memtable_bytes", ds(func(s DeltaStats) int64 { return s.MemtableBytes }))
	reg.GaugeFunc(prefix+"_memtable_entries", ds(func(s DeltaStats) int64 { return s.MemtableEntries }))
	reg.GaugeFunc(prefix+"_segments", ds(func(s DeltaStats) int64 { return int64(s.Segments) }))
	reg.GaugeFunc(prefix+"_segment_bytes", ds(func(s DeltaStats) int64 { return s.SegmentBytes }))
	reg.GaugeFunc(prefix+"_segment_entries", ds(func(s DeltaStats) int64 { return s.SegmentEntries }))
	reg.CounterFunc(prefix+"_applied_ops", o.appliedOps.Load)
	reg.CounterFunc(prefix+"_seals", o.seals.Load)
	reg.CounterFunc(prefix+"_compactions", o.compactions.Load)
	reg.CounterFunc(prefix+"_folds", o.folds.Load)
	reg.CounterFunc(prefix+"_merge_bytes_in", o.mergeBytesIn.Load)
	reg.CounterFunc(prefix+"_merge_bytes_out", o.mergeBytesOut.Load)
	reg.CounterFunc(prefix+"_lookups_passthrough", o.passthrough.Load)
	reg.CounterFunc(prefix+"_lookups_merged", o.mergedLookups.Load)
	reg.CounterFunc(prefix+"_segment_reads", o.segReads.Load)
}

// Seal freezes the active memtable and writes it out as a new delta
// segment (a no-op on an empty memtable). Mutations arriving during
// the seal land in a fresh memtable; readers see the sealing table
// until its segment is installed, so no window drops updates. Traced
// requests record the write as a "delta.seal" span.
func (o *Overlay) Seal(ctx context.Context) error {
	o.structMu.Lock()
	defer o.structMu.Unlock()
	return o.sealLocked(ctx)
}

// sealLocked is Seal's body; the caller holds structMu.
func (o *Overlay) sealLocked(ctx context.Context) error {
	mt := o.mt.Load()
	o.mu.RLock()
	leftover := len(o.frozen)
	o.mu.RUnlock()
	if mt.len() == 0 && leftover == 0 {
		return nil
	}
	traced := trace.Active(ctx)
	var start time.Time
	if traced {
		start = time.Now()
	}
	fresh := newMemtable()
	o.mu.Lock()
	o.frozen = append(o.frozen, mt)
	// Tables a previous failed seal left frozen are retried as part of
	// this one (frozen order is oldest..newest, matching the merge).
	frozen := append([]*memtable(nil), o.frozen...)
	o.mt.Store(fresh)
	o.mu.Unlock()
	mt.seal()

	layers := make([][]pageOps, len(frozen))
	for i, fm := range frozen {
		layers[i] = fm.snapshot()
	}
	pos := mergePageOps(layers...)
	seq := o.seq.Add(1)
	path := filepath.Join(o.dir, fmt.Sprintf("seg-%06d.delta", seq))
	if err := writeSegmentFile(path, pos); err != nil {
		// The frozen table stays in the read path, so no update is
		// lost — the seal just isn't durable. Surface the error and let
		// the caller retry the seal or keep serving from memory.
		return err
	}
	seg, err := openSegment(path, o.acc, seq)
	if err != nil {
		os.Remove(path)
		return err
	}
	// Install the segment and retire the frozen table in one critical
	// section, so readers never see the ops in zero or two layers in a
	// way that changes the outcome (both hold identical latest-wins
	// state, so even the instant before this swap is consistent).
	o.mu.Lock()
	o.segments = append(o.segments, seg)
	// The sealed tables are a prefix of frozen (only sealLocked appends,
	// and structMu serializes it); drop exactly them.
	o.frozen = o.frozen[len(frozen):]
	o.mu.Unlock()
	o.seals.Add(1)
	if traced {
		trace.RecordSpan(ctx, "delta.seal", start, time.Since(start),
			trace.Attr{Key: "entries", Val: opsEntryCount(pos)},
			trace.Attr{Key: "bytes", Val: seg.size})
	}
	return nil
}

// MergeOnce merges the adjacent pair of segments with the smallest
// combined size into one (the size-tiered step the compactor repeats
// until its policy is satisfied). Returns false when fewer than two
// segments exist. Traced requests record a "delta.merge" span.
func (o *Overlay) MergeOnce(ctx context.Context) (bool, error) {
	o.structMu.Lock()
	defer o.structMu.Unlock()
	return o.mergeOnceLocked(ctx)
}

func (o *Overlay) mergeOnceLocked(ctx context.Context) (bool, error) {
	// The segment list only changes under structMu (held), so reading
	// it under RLock and swapping under Lock later is stable.
	o.mu.RLock()
	if len(o.segments) < 2 {
		o.mu.RUnlock()
		return false, nil
	}
	best := 0
	for i := 0; i+1 < len(o.segments); i++ {
		if o.segments[i].size+o.segments[i+1].size <
			o.segments[best].size+o.segments[best+1].size {
			best = i
		}
	}
	a, b := o.segments[best], o.segments[best+1]
	o.mu.RUnlock()

	traced := trace.Active(ctx)
	var start time.Time
	if traced {
		start = time.Now()
	}
	aPos, err := a.all(ctx)
	if err != nil {
		return false, err
	}
	bPos, err := b.all(ctx)
	if err != nil {
		return false, err
	}
	merged := mergePageOps(aPos, bPos)
	seq := o.seq.Add(1)
	path := filepath.Join(o.dir, fmt.Sprintf("seg-%06d.delta", seq))
	if err := writeSegmentFile(path, merged); err != nil {
		return false, err
	}
	seg, err := openSegment(path, o.acc, seq)
	if err != nil {
		os.Remove(path)
		return false, err
	}
	o.mu.Lock()
	o.segments[best] = seg
	o.segments = append(o.segments[:best+1], o.segments[best+2:]...)
	o.mu.Unlock()
	// No reader can hold a or b now: lookups pin the segment list with
	// the read lock for their whole merge.
	a.close()
	b.close()
	os.Remove(a.path)
	os.Remove(b.path)
	o.compactions.Add(1)
	o.mergeBytesIn.Add(a.size + b.size)
	o.mergeBytesOut.Add(seg.size)
	if traced {
		trace.RecordSpan(ctx, "delta.merge", start, time.Since(start),
			trace.Attr{Key: "in_bytes", Val: a.size + b.size},
			trace.Attr{Key: "out_bytes", Val: seg.size})
	}
	return true, nil
}

// SegmentCount reports the current number of on-disk segments.
func (o *Overlay) SegmentCount() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.segments)
}

// DeltaEntries reports the total live delta records across all layers
// (the compactor's fold trigger).
func (o *Overlay) DeltaEntries() int64 {
	s := o.DeltaStatsNow()
	return s.MemtableEntries + s.SegmentEntries
}

// MemtableBytes reports the active+sealing memtable footprint (the
// compactor's seal trigger).
func (o *Overlay) MemtableBytes() int64 {
	return o.DeltaStatsNow().MemtableBytes
}
