package delta

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"snode/internal/iosim"
	"snode/internal/snode"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

// FoldConfig parameterizes a fold-back: the overlay's accumulated
// deltas are materialized into a mutated corpus and rebuilt into a
// fresh S-Node representation that becomes the overlay's new base.
type FoldConfig struct {
	// SNode is the build configuration handed to snode.BuildCtx — the
	// same knobs (and the same parallel builder) snbuild uses.
	SNode snode.Config
	// Dir is the parent directory for fold outputs; each fold builds
	// into its own fold-<n> subdirectory so the previous base's files
	// stay valid until the swap completes.
	Dir string
	// CacheBudget and Model open the rebuilt representation exactly as
	// snserve opens its initial one.
	CacheBudget int64
	Model       iosim.Model
}

// MaterializeCorpus seals the memtable and returns the corpus the
// overlay currently represents: base adjacency with every delta op
// applied, over the full page set including added pages. The result is
// canonical (webgraph.Builder sorts and deduplicates), so building it
// is byte-for-byte the build of an equivalent from-scratch crawl.
func (o *Overlay) MaterializeCorpus(ctx context.Context) (*webgraph.Corpus, error) {
	o.structMu.Lock()
	defer o.structMu.Unlock()
	corpus, _, err := o.materializeLocked(ctx)
	return corpus, err
}

// materializeLocked seals and materializes under structMu, returning
// the corpus and the segment prefix it covers (the segments a fold may
// retire once the rebuilt base is installed).
func (o *Overlay) materializeLocked(ctx context.Context) (*webgraph.Corpus, []*segment, error) {
	if err := o.sealLocked(ctx); err != nil {
		return nil, nil, err
	}
	// structMu is held: the segment list cannot change. The snapshot
	// covers every mutation applied before this call; later mutations
	// land in the fresh memtable and stay layered over the new base.
	o.mu.RLock()
	segs := append([]*segment(nil), o.segments...)
	pages := append([]webgraph.PageMeta(nil), o.pages...)
	base := o.base
	baseN := base.NumPages()
	o.mu.RUnlock()

	merged := make([][]pageOps, 0, len(segs))
	for _, s := range segs {
		pos, err := s.all(ctx)
		if err != nil {
			return nil, nil, err
		}
		merged = append(merged, pos)
	}
	ops := mergePageOps(merged...)

	b := webgraph.NewBuilder(len(pages))
	buf := make([]webgraph.PageID, 0, 256)
	oi := 0
	for p := 0; p < len(pages); p++ {
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		var po *pageOps
		if oi < len(ops) && ops[oi].src == webgraph.PageID(p) {
			po = &ops[oi]
			oi++
		}
		if p < baseN {
			var err error
			buf, err = base.Out(webgraph.PageID(p), buf[:0])
			if err != nil {
				return nil, nil, fmt.Errorf("delta: materialize page %d: %w", p, err)
			}
		} else {
			buf = buf[:0]
		}
		if po == nil {
			for _, t := range buf {
				b.AddEdge(webgraph.PageID(p), t)
			}
			continue
		}
		// Removed targets are dropped from the base list; adds are
		// appended (the builder dedups targets the base already had).
		for _, t := range buf {
			if removedIn(po.ops, t) {
				continue
			}
			b.AddEdge(webgraph.PageID(p), t)
		}
		for _, e := range po.ops {
			if e.op == OpAdd {
				b.AddEdge(webgraph.PageID(p), e.dst)
			}
		}
	}
	return &webgraph.Corpus{Graph: b.Build(), Pages: pages}, segs, nil
}

// removedIn reports whether t carries an OpRemove in a sorted op list.
func removedIn(ops []dstOp, t webgraph.PageID) bool {
	lo, hi := 0, len(ops)
	for lo < hi {
		mid := (lo + hi) / 2
		if ops[mid].dst < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ops) && ops[lo].dst == t && ops[lo].op == OpRemove
}

// FoldBack rebuilds the overlay's current state into a fresh S-Node
// representation and installs it as the new base, retiring every delta
// segment the rebuild covered. The build runs through snode.BuildCtx —
// the existing parallel builder — and honours ctx cancellation; on
// error the overlay is untouched. Returns the new base's directory.
// Traced requests record the whole fold as a "delta.fold" span.
func (o *Overlay) FoldBack(ctx context.Context, fc FoldConfig) (string, error) {
	o.structMu.Lock()
	defer o.structMu.Unlock()
	traced := trace.Active(ctx)
	var start time.Time
	if traced {
		start = time.Now()
	}
	corpus, segs, err := o.materializeLocked(ctx)
	if err != nil {
		return "", err
	}
	dir := filepath.Join(fc.Dir, fmt.Sprintf("fold-%d", o.folds.Load()+1))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("delta: %w", err)
	}
	if _, err := snode.BuildCtx(ctx, corpus, fc.SNode, dir); err != nil {
		os.RemoveAll(dir)
		return "", fmt.Errorf("delta: fold build: %w", err)
	}
	rep, err := snode.Open(dir, fc.CacheBudget, fc.Model)
	if err != nil {
		os.RemoveAll(dir)
		return "", fmt.Errorf("delta: fold open: %w", err)
	}

	o.mu.Lock()
	oldBase, wasOwned, oldDir := o.base, o.ownsBase, o.baseDir
	o.base = rep
	o.baseCtx = rep
	o.ownsBase = true
	o.baseDir = dir
	o.segments = o.segments[len(segs):]
	o.mu.Unlock()

	// No reader can still hold the retired layers: the swap's write
	// lock waited out every in-flight lookup.
	for _, s := range segs {
		s.close()
		os.Remove(s.path)
	}
	if wasOwned {
		oldBase.Close()
		if oldDir != "" {
			os.RemoveAll(oldDir)
		}
	}
	o.folds.Add(1)
	if traced {
		trace.RecordSpan(ctx, "delta.fold", start, time.Since(start),
			trace.Attr{Key: "pages", Val: int64(len(corpus.Pages))},
			trace.Attr{Key: "segments", Val: int64(len(segs))})
	}
	return dir, nil
}
