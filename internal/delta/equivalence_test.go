package delta_test

import (
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"snode/internal/delta"
	"snode/internal/query"
	"snode/internal/randutil"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// The golden-equivalence criterion: an Overlay over the original
// S-Node base, carrying a mutation log, must answer the six paper
// queries byte-identically to S-Node representations rebuilt from
// scratch over the mutated graph — at every delta depth (memtable
// only, several segments, compacted, folded back). Both sides share
// the corpus metadata and the text/PageRank/domain indexes (the
// mutations touch links between existing pages only, which leaves
// those indexes untouched by construction), so any Rows difference is
// a navigation difference, i.e. an overlay bug.

const equivPages = 12000

func buildMutated(c *webgraph.Corpus, muts []delta.Mutation) *webgraph.Corpus {
	adj := make([]map[webgraph.PageID]bool, c.Graph.NumPages())
	for p := range adj {
		adj[p] = map[webgraph.PageID]bool{}
		for _, t := range c.Graph.Out(webgraph.PageID(p)) {
			adj[p][t] = true
		}
	}
	for _, m := range muts {
		if m.Op == delta.OpAdd {
			adj[m.Src][m.Dst] = true
		} else {
			delete(adj[m.Src], m.Dst)
		}
	}
	b := webgraph.NewBuilder(len(adj))
	for p := range adj {
		for t := range adj[p] {
			b.AddEdge(webgraph.PageID(p), t)
		}
	}
	return &webgraph.Corpus{Graph: b.Build(), Pages: c.Pages}
}

// genMutations produces a deterministic mixed log: removals of real
// edges, additions of new ones, and flip-flops that exercise the
// latest-wins shadowing across layers.
func genMutations(c *webgraph.Corpus, rng *randutil.RNG, n int) []delta.Mutation {
	g := c.Graph
	np := g.NumPages()
	var muts []delta.Mutation
	for len(muts) < n {
		switch rng.Intn(4) {
		case 0: // remove an existing edge
			s := webgraph.PageID(rng.Intn(np))
			out := g.Out(s)
			if len(out) == 0 {
				continue
			}
			muts = append(muts, delta.Mutation{Src: s, Dst: out[rng.Intn(len(out))], Op: delta.OpRemove})
		case 1: // add a random edge (may already exist)
			muts = append(muts, delta.Mutation{
				Src: webgraph.PageID(rng.Intn(np)),
				Dst: webgraph.PageID(rng.Intn(np)),
				Op:  delta.OpAdd,
			})
		default: // flip a previous mutation back
			if len(muts) == 0 {
				continue
			}
			prev := muts[rng.Intn(len(muts))]
			op := delta.OpAdd
			if prev.Op == delta.OpAdd {
				op = delta.OpRemove
			}
			muts = append(muts, delta.Mutation{Src: prev.Src, Dst: prev.Dst, Op: op})
		}
	}
	return muts
}

// mirror transposes a mutation log for the reverse overlay, the way
// the repo builder materializes WGT next to WG.
func mirror(muts []delta.Mutation) []delta.Mutation {
	out := make([]delta.Mutation, len(muts))
	for i, m := range muts {
		out[i] = delta.Mutation{Src: m.Dst, Dst: m.Src, Op: m.Op}
	}
	return out
}

// derived clones a repository with different snode stores, sharing the
// corpus and every index.
func derived(r *repo.Repository, fwd, rev store.LinkStore) *repo.Repository {
	return &repo.Repository{
		Corpus:   r.Corpus,
		Text:     r.Text,
		PageRank: r.PageRank,
		Domains:  r.Domains,
		Model:    r.Model,
		Fwd:      map[string]store.LinkStore{repo.SchemeSNode: fwd},
		Rev:      map[string]store.LinkStore{repo.SchemeSNode: rev},
	}
}

func runRows(t *testing.T, r *repo.Repository) []*query.Result {
	t.Helper()
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func compareRows(t *testing.T, stage string, got, want []*query.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", stage, len(got), len(want))
	}
	for qi := range want {
		if len(got[qi].Rows) != len(want[qi].Rows) {
			t.Fatalf("%s: query %d: %d rows, want %d",
				stage, want[qi].Query, len(got[qi].Rows), len(want[qi].Rows))
		}
		for ri := range want[qi].Rows {
			if got[qi].Rows[ri] != want[qi].Rows[ri] {
				t.Fatalf("%s: query %d row %d: %+v != %+v",
					stage, want[qi].Query, ri, got[qi].Rows[ri], want[qi].Rows[ri])
			}
		}
	}
}

func dirHashes(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fmt.Sprintf("%x", sha256.Sum256(data))
	}
	return out
}

func TestOverlayGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	crawl, err := synth.Generate(synth.DefaultConfig(equivPages))
	if err != nil {
		t.Fatal(err)
	}
	corpus := crawl.Corpus
	opt := repo.DefaultOptions(t.TempDir())
	opt.Schemes = []string{repo.SchemeSNode}
	orig, err := repo.Build(corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()

	rng := randutil.NewRNG(20260805)
	muts := genMutations(corpus, rng, 900)
	mutated := buildMutated(corpus, muts)

	// Reference: S-Node rebuilt from scratch over the mutated graph
	// (and its transpose), sharing every index with the original.
	refFwdDir := filepath.Join(t.TempDir(), "ref.fwd")
	refRevDir := filepath.Join(t.TempDir(), "ref.rev")
	for dir, c := range map[string]*webgraph.Corpus{
		refFwdDir: mutated,
		refRevDir: {Graph: mutated.Graph.Transpose(), Pages: mutated.Pages},
	} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := snode.Build(c, opt.SNode, dir); err != nil {
			t.Fatal(err)
		}
	}
	refFwd, err := snode.Open(refFwdDir, opt.CacheBudget, opt.Model)
	if err != nil {
		t.Fatal(err)
	}
	defer refFwd.Close()
	refRev, err := snode.Open(refRevDir, opt.CacheBudget, opt.Model)
	if err != nil {
		t.Fatal(err)
	}
	defer refRev.Close()
	want := runRows(t, derived(orig, refFwd, refRev))

	// Zero-delta pass-through: an empty overlay must not change any
	// result relative to the bare base store.
	mkOverlay := func(base store.LinkStore) *delta.Overlay {
		o, err := delta.NewOverlay(base, delta.Config{
			Pages: corpus.Pages,
			Dir:   t.TempDir(),
			Model: opt.Model,
		})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	fwdOv := mkOverlay(orig.Fwd[repo.SchemeSNode])
	revOv := mkOverlay(orig.Rev[repo.SchemeSNode])
	defer fwdOv.Close()
	defer revOv.Close()
	live := derived(orig, fwdOv, revOv)
	baseline := runRows(t, derived(orig, orig.Fwd[repo.SchemeSNode], orig.Rev[repo.SchemeSNode]))
	compareRows(t, "zero-delta", runRows(t, live), baseline)

	// Apply the log in three batches with seals between them, leaving
	// the last batch in the memtable: layers = 2 segments + memtable.
	revMuts := mirror(muts)
	third := len(muts) / 3
	for i, batch := range [][2]int{{0, third}, {third, 2 * third}, {2 * third, len(muts)}} {
		if err := fwdOv.Apply(ctx, muts[batch[0]:batch[1]]); err != nil {
			t.Fatal(err)
		}
		if err := revOv.Apply(ctx, revMuts[batch[0]:batch[1]]); err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			if err := fwdOv.Seal(ctx); err != nil {
				t.Fatal(err)
			}
			if err := revOv.Seal(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	compareRows(t, "segments+memtable", runRows(t, live), want)

	// Everything sealed: three segments, empty memtable.
	if err := fwdOv.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if err := revOv.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	compareRows(t, "all-segments", runRows(t, live), want)

	// Compacted down to one segment.
	for _, o := range []*delta.Overlay{fwdOv, revOv} {
		for o.SegmentCount() > 1 {
			did, err := o.MergeOnce(ctx)
			if err != nil || !did {
				t.Fatalf("MergeOnce = %v, %v", did, err)
			}
		}
	}
	compareRows(t, "compacted", runRows(t, live), want)

	// Fold-back: the overlay rebuilds itself into a fresh S-Node base.
	// The artifacts must hash identically to a clean build of the
	// mutated graph — same bytes, not just same answers.
	foldDir, err := fwdOv.FoldBack(ctx, delta.FoldConfig{
		SNode:       opt.SNode,
		Dir:         t.TempDir(),
		CacheBudget: opt.CacheBudget,
		Model:       opt.Model,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantHashes := dirHashes(t, refFwdDir)
	gotHashes := dirHashes(t, foldDir)
	if len(gotHashes) != len(wantHashes) {
		t.Fatalf("fold dir has %d files, clean build %d", len(gotHashes), len(wantHashes))
	}
	for name, h := range wantHashes {
		if gotHashes[name] != h {
			t.Fatalf("fold artifact %s hash %s != clean build %s", name, gotHashes[name], h)
		}
	}
	if fwdOv.SegmentCount() != 0 || fwdOv.DeltaEntries() != 0 {
		t.Fatalf("fold left residue: %d segments, %d entries",
			fwdOv.SegmentCount(), fwdOv.DeltaEntries())
	}

	// Queries stay byte-identical after the swap (fwd folded, rev still
	// layered — both paths must agree with the reference).
	compareRows(t, "post-fold", runRows(t, live), want)
}
