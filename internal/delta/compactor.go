package delta

import (
	"context"
	"sync"
	"time"

	"snode/internal/trace"
)

// CompactorConfig sets the background maintenance policy.
type CompactorConfig struct {
	// Interval is the poll cadence (default 250ms).
	Interval time.Duration
	// SealBytes seals the active memtable into a segment once its
	// accounted footprint reaches this many bytes (default 1 MiB).
	SealBytes int64
	// MaxSegments is the size-tiered trigger: while more than this many
	// segments exist, the adjacent pair with the smallest combined size
	// is merged (default 4).
	MaxSegments int
	// FoldEntries triggers a full fold-back into a fresh S-Node build
	// once the total live delta records reach this count. Zero disables
	// automatic fold-back (Overlay.FoldBack stays available manually);
	// when set, Fold must be too.
	FoldEntries int64
	// Fold parameterizes automatic fold-backs.
	Fold FoldConfig
	// OnError observes background failures (default: ignore; the next
	// tick retries). Called from the compactor goroutine.
	OnError func(error)
}

func (c *CompactorConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.SealBytes <= 0 {
		c.SealBytes = 1 << 20
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 4
	}
}

// Compactor is the overlay's background maintenance goroutine: it
// seals full memtables, merges small segments size-tiered, and — when
// configured — folds the whole overlay back into a fresh S-Node build.
// All work honours the context StartCompactor was given; Stop cancels
// it and waits the goroutine out.
type Compactor struct {
	o      *Overlay
	cfg    CompactorConfig
	cancel context.CancelFunc
	done   chan struct{}
	stop   sync.Once
}

// StartCompactor launches the maintenance loop over o. The returned
// Compactor must be Stopped before the overlay is Closed.
func StartCompactor(ctx context.Context, o *Overlay, cfg CompactorConfig) *Compactor {
	cfg.defaults()
	ctx, cancel := context.WithCancel(ctx)
	c := &Compactor{o: o, cfg: cfg, cancel: cancel, done: make(chan struct{})}
	go c.run(ctx)
	return c
}

// Stop cancels in-flight maintenance and waits for the goroutine to
// exit. Safe to call more than once.
func (c *Compactor) Stop() {
	c.stop.Do(c.cancel)
	<-c.done
}

func (c *Compactor) run(ctx context.Context) {
	defer close(c.done)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if err := c.RunOnce(ctx); err != nil && ctx.Err() == nil && c.cfg.OnError != nil {
			c.cfg.OnError(err)
		}
	}
}

// RunOnce performs one maintenance pass: seal if the memtable is over
// budget, merge segments down to the tier limit, fold back if the
// delta has grown past the fold threshold. Exported so tests and the
// update experiment can drive compaction deterministically; on traced
// contexts the pass records a "compact.run" span.
func (c *Compactor) RunOnce(ctx context.Context) error {
	traced := trace.Active(ctx)
	var start time.Time
	if traced {
		start = time.Now()
	}
	var sealed, merges, folded int64
	if c.o.MemtableBytes() >= c.cfg.SealBytes {
		if err := c.o.Seal(ctx); err != nil {
			return err
		}
		sealed = 1
	}
	for c.o.SegmentCount() > c.cfg.MaxSegments {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		did, err := c.o.MergeOnce(ctx)
		if err != nil {
			return err
		}
		if !did {
			break
		}
		merges++
	}
	if c.cfg.FoldEntries > 0 && c.o.DeltaEntries() >= c.cfg.FoldEntries {
		if _, err := c.o.FoldBack(ctx, c.cfg.Fold); err != nil {
			return err
		}
		folded = 1
	}
	if traced {
		trace.RecordSpan(ctx, "compact.run", start, time.Since(start),
			trace.Attr{Key: "sealed", Val: sealed},
			trace.Attr{Key: "merges", Val: merges},
			trace.Attr{Key: "folded", Val: folded})
	}
	return nil
}
