// Package delta adds live-update support to the otherwise immutable
// graph representations: a log-structured overlay in the LSM style
// layered over any store.LinkStore.
//
// The paper's S-Node layout (and all four baselines) is built once from
// a frozen crawl; WebBase-style repositories, however, are refreshed by
// incremental crawls, and the survey literature (PAPERS.md, Besta &
// Hoefler's compression taxonomy) names update support as the standing
// weakness of compressed static layouts. Rather than mutate the packed
// representation in place — which would destroy the reference-encoded
// clustering the compression wins come from — the overlay keeps the
// base immutable and layers mutations on top:
//
//	base (immutable LinkStore)
//	  < delta segments, oldest .. newest  (sorted, immutable, on disk)
//	    < sealing memtables               (frozen, being written out)
//	      < active memtable               (sharded, mutex per shard)
//
// A link's effective state is decided by the newest layer that mentions
// the (src, dst) pair: an add inserts the edge, a remove shadows it
// even when the base contains it. Reads merge all layers; pages no
// layer mentions take a pass-through fast path straight to the base
// store, so a zero-delta overlay serves within noise of the bare store.
//
// Segment reads are charged through the same iosim accounting as every
// other representation, so the modeled cost of update depth is visible
// to the experiments, and a background Compactor merges small segments
// under a size-tiered policy and can fold the whole overlay back into a
// fresh S-Node build through the existing parallel builder.
package delta

import (
	"fmt"

	"snode/internal/webgraph"
)

// Op is the kind of one link mutation.
type Op uint8

const (
	// OpAdd inserts the link (a no-op when the newest prior state
	// already contains it).
	OpAdd Op = 1
	// OpRemove deletes the link, shadowing the base representation.
	OpRemove Op = 2
)

// String renders the op for errors and logs.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Mutation is one link change: Src gains or loses the out-link to Dst.
// Callers serving a transposed representation mirror each mutation
// (Dst, Src) into the reverse overlay themselves, exactly as the repo
// builder materializes WGT next to WG.
type Mutation struct {
	Src webgraph.PageID
	Dst webgraph.PageID
	Op  Op
}

// Validate rejects malformed mutations before they reach a layer.
func (m Mutation) Validate(numPages int) error {
	if m.Op != OpAdd && m.Op != OpRemove {
		return fmt.Errorf("delta: unknown op %d", m.Op)
	}
	if m.Src < 0 || int(m.Src) >= numPages {
		return fmt.Errorf("delta: source page %d out of range [0,%d)", m.Src, numPages)
	}
	if m.Dst < 0 || int(m.Dst) >= numPages {
		return fmt.Errorf("delta: target page %d out of range [0,%d)", m.Dst, numPages)
	}
	return nil
}
