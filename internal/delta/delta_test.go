package delta

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/randutil"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// testBase is a minimal in-memory LinkStore for unit tests: sorted
// adjacency, no I/O.
type testBase struct {
	adj   [][]webgraph.PageID
	pages []webgraph.PageMeta
	stats store.AccessStats
}

func newTestBase(adj [][]webgraph.PageID, domains []string) *testBase {
	b := &testBase{adj: adj}
	for i, d := range domains {
		b.pages = append(b.pages, webgraph.PageMeta{
			URL:    fmt.Sprintf("http://%s/p%d", d, i),
			Domain: d,
		})
	}
	for _, l := range b.adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return b
}

func (b *testBase) Name() string  { return "test" }
func (b *testBase) NumPages() int { return len(b.adj) }
func (b *testBase) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return append(buf, b.adj[p]...), nil
}
func (b *testBase) OutFiltered(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	for _, t := range b.adj[p] {
		if f.Empty() || f.AcceptsPage(t) || f.AcceptsDomain(b.pages[t].Domain) {
			buf = append(buf, t)
		}
	}
	return buf, nil
}
func (b *testBase) Stats() store.AccessStats { return b.stats }
func (b *testBase) ResetStats()              { b.stats = store.AccessStats{} }
func (b *testBase) Close() error             { return nil }

// expected computes the reference adjacency: base with muts applied in
// order, latest op per pair winning.
func expected(base [][]webgraph.PageID, n int, muts []Mutation) []map[webgraph.PageID]bool {
	out := make([]map[webgraph.PageID]bool, n)
	for i := range out {
		out[i] = map[webgraph.PageID]bool{}
		if i < len(base) {
			for _, t := range base[i] {
				out[i][t] = true
			}
		}
	}
	for _, m := range muts {
		if m.Op == OpAdd {
			out[m.Src][m.Dst] = true
		} else {
			delete(out[m.Src], m.Dst)
		}
	}
	return out
}

func sortedSet(m map[webgraph.PageID]bool) []webgraph.PageID {
	out := make([]webgraph.PageID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func asSorted(l []webgraph.PageID) []webgraph.PageID {
	out := append([]webgraph.PageID(nil), l...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pageIDsEqual(a, b []webgraph.PageID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newTestOverlay(t *testing.T, base *testBase) *Overlay {
	t.Helper()
	o, err := NewOverlay(base, Config{
		Pages: base.pages,
		Dir:   t.TempDir(),
		Model: iosim.Model2002(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { o.Close() })
	return o
}

// checkAll compares every page's overlay adjacency (as a set) against
// the reference model.
func checkAll(t *testing.T, o *Overlay, want []map[webgraph.PageID]bool, stage string) {
	t.Helper()
	var buf []webgraph.PageID
	for p := range want {
		var err error
		buf, err = o.Out(webgraph.PageID(p), buf[:0])
		if err != nil {
			t.Fatalf("%s: Out(%d): %v", stage, p, err)
		}
		seen := map[webgraph.PageID]bool{}
		for _, x := range buf {
			if seen[x] {
				t.Fatalf("%s: Out(%d) returned duplicate %d", stage, p, x)
			}
			seen[x] = true
		}
		if !pageIDsEqual(asSorted(buf), sortedSet(want[p])) {
			t.Fatalf("%s: Out(%d) = %v, want %v", stage, p, asSorted(buf), sortedSet(want[p]))
		}
	}
}

func testMutations(n int, rng interface{ Intn(int) int }, count int) []Mutation {
	muts := make([]Mutation, 0, count)
	for i := 0; i < count; i++ {
		m := Mutation{
			Src: webgraph.PageID(rng.Intn(n)),
			Dst: webgraph.PageID(rng.Intn(n)),
			Op:  OpAdd,
		}
		if rng.Intn(2) == 0 {
			m.Op = OpRemove
		}
		muts = append(muts, m)
	}
	return muts
}

func smallBase() *testBase {
	// Three domains, ten pages.
	domains := []string{
		"a.edu", "a.edu", "a.edu", "a.edu",
		"b.com", "b.com", "b.com",
		"c.org", "c.org", "c.org",
	}
	adj := [][]webgraph.PageID{
		{1, 4, 7}, {0, 2}, {3}, {},
		{5, 0}, {6}, {4, 9}, {8},
		{7, 1, 3}, {0},
	}
	return newTestBase(adj, domains)
}

func TestOverlayShadowing(t *testing.T) {
	base := smallBase()
	o := newTestOverlay(t, base)
	ctx := context.Background()

	muts := []Mutation{
		{Src: 0, Dst: 2, Op: OpAdd},    // new edge
		{Src: 0, Dst: 4, Op: OpRemove}, // shadow a base edge
		{Src: 0, Dst: 1, Op: OpAdd},    // add of an edge the base has
		{Src: 3, Dst: 9, Op: OpAdd},    // empty base list gains an edge
		{Src: 5, Dst: 6, Op: OpRemove}, // then re-added below
		{Src: 5, Dst: 6, Op: OpAdd},
		{Src: 7, Dst: 8, Op: OpRemove},
		{Src: 7, Dst: 8, Op: OpRemove}, // duplicate remove
		{Src: 9, Dst: 9, Op: OpRemove}, // remove of an absent edge
	}
	if err := o.Apply(ctx, muts); err != nil {
		t.Fatal(err)
	}
	want := expected(base.adj, base.NumPages(), muts)

	checkAll(t, o, want, "memtable")
	if err := o.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if got := o.SegmentCount(); got != 1 {
		t.Fatalf("SegmentCount = %d after seal", got)
	}
	checkAll(t, o, want, "sealed")

	// A second batch reverses some of the first; seal again and merge.
	muts2 := []Mutation{
		{Src: 0, Dst: 4, Op: OpAdd}, // un-shadow
		{Src: 3, Dst: 9, Op: OpRemove},
		{Src: 2, Dst: 0, Op: OpAdd},
	}
	if err := o.Apply(ctx, muts2); err != nil {
		t.Fatal(err)
	}
	all := append(append([]Mutation(nil), muts...), muts2...)
	want = expected(base.adj, base.NumPages(), all)
	checkAll(t, o, want, "memtable-over-segment")

	if err := o.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	checkAll(t, o, want, "two-segments")

	did, err := o.MergeOnce(ctx)
	if err != nil || !did {
		t.Fatalf("MergeOnce = %v, %v", did, err)
	}
	if got := o.SegmentCount(); got != 1 {
		t.Fatalf("SegmentCount = %d after merge", got)
	}
	checkAll(t, o, want, "merged")

	ds := o.DeltaStatsNow()
	if ds.Seals != 2 || ds.Compactions != 1 || ds.AppliedOps != int64(len(all)) {
		t.Fatalf("stats = %+v", ds)
	}
}

func TestOverlayFilterPushdown(t *testing.T) {
	base := smallBase()
	o := newTestOverlay(t, base)
	ctx := context.Background()

	muts := []Mutation{
		{Src: 0, Dst: 8, Op: OpAdd},    // c.org target added
		{Src: 0, Dst: 3, Op: OpAdd},    // a.edu target added
		{Src: 0, Dst: 7, Op: OpRemove}, // c.org base target removed
	}
	if err := o.Apply(ctx, muts); err != nil {
		t.Fatal(err)
	}
	check := func(stage string, f *store.Filter) {
		t.Helper()
		got, err := o.OutFiltered(0, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: unfiltered effective adjacency, filtered by the
		// same predicate.
		want := []webgraph.PageID{}
		eff := expected(base.adj, base.NumPages(), muts)[0]
		for _, tgt := range sortedSet(eff) {
			if f.Empty() || f.AcceptsPage(tgt) || f.AcceptsDomain(base.pages[tgt].Domain) {
				want = append(want, tgt)
			}
		}
		if !pageIDsEqual(asSorted(got), want) {
			t.Fatalf("%s: filtered = %v, want %v", stage, asSorted(got), want)
		}
	}
	filters := []*store.Filter{
		{Domains: map[string]bool{"c.org": true}},
		{Domains: map[string]bool{"a.edu": true}},
		{Pages: map[webgraph.PageID]bool{8: true, 4: true}},
		{Domains: map[string]bool{"b.com": true}, Pages: map[webgraph.PageID]bool{3: true}},
		nil,
	}
	for i, f := range filters {
		check(fmt.Sprintf("memtable/f%d", i), f)
	}
	if err := o.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	for i, f := range filters {
		check(fmt.Sprintf("segment/f%d", i), f)
	}
}

func TestOverlayAddPage(t *testing.T) {
	base := smallBase()
	o := newTestOverlay(t, base)
	ctx := context.Background()

	id := o.AddPage(webgraph.PageMeta{URL: "http://d.net/new", Domain: "d.net"})
	if int(id) != base.NumPages() {
		t.Fatalf("AddPage id = %d", id)
	}
	if o.NumPages() != base.NumPages()+1 {
		t.Fatalf("NumPages = %d", o.NumPages())
	}
	// New page starts with no links.
	got, err := o.Out(id, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("new page Out = %v, %v", got, err)
	}
	muts := []Mutation{
		{Src: id, Dst: 0, Op: OpAdd},
		{Src: 0, Dst: id, Op: OpAdd},
	}
	if err := o.Apply(ctx, muts); err != nil {
		t.Fatal(err)
	}
	got, err = o.Out(id, nil)
	if err != nil || !pageIDsEqual(got, []webgraph.PageID{0}) {
		t.Fatalf("new page Out = %v, %v", got, err)
	}
	got, err = o.Out(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range got {
		if x == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("page 0 missing link to added page: %v", got)
	}
	// The link survives a seal (the segment format holds IDs beyond the
	// base's range).
	if err := o.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	got, err = o.Out(id, nil)
	if err != nil || !pageIDsEqual(got, []webgraph.PageID{0}) {
		t.Fatalf("sealed new page Out = %v, %v", got, err)
	}
}

func TestApplyValidation(t *testing.T) {
	o := newTestOverlay(t, smallBase())
	ctx := context.Background()
	bad := [][]Mutation{
		{{Src: -1, Dst: 0, Op: OpAdd}},
		{{Src: 0, Dst: 99, Op: OpAdd}},
		{{Src: 0, Dst: 0, Op: Op(7)}},
	}
	for i, muts := range bad {
		if err := o.Apply(ctx, muts); err == nil {
			t.Fatalf("case %d: Apply accepted invalid mutation", i)
		}
	}
	if _, err := o.Out(42, nil); err == nil {
		t.Fatal("Out accepted out-of-range page")
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	rng := randutil.NewRNG(7)
	pos := []pageOps{}
	n := 500
	for src := 0; src < n; src += 1 + rng.Intn(5) {
		po := pageOps{src: webgraph.PageID(src)}
		for d := 0; d < 1+rng.Intn(20); d++ {
			op := OpAdd
			if rng.Intn(2) == 0 {
				op = OpRemove
			}
			po.ops = append(po.ops, dstOp{dst: webgraph.PageID(rng.Intn(n)), op: op})
		}
		sort.Slice(po.ops, func(a, b int) bool { return po.ops[a].dst < po.ops[b].dst })
		// Dedup (the memtable can't emit duplicate dsts).
		k := 0
		for i := range po.ops {
			if i == 0 || po.ops[i].dst != po.ops[i-1].dst {
				po.ops[k] = po.ops[i]
				k++
			}
		}
		po.ops = po.ops[:k]
		pos = append(pos, po)
	}
	path := filepath.Join(t.TempDir(), "seg.delta")
	if err := writeSegmentFile(path, pos); err != nil {
		t.Fatal(err)
	}
	acc := iosim.NewAccountant(iosim.Model2002())
	s, err := openSegment(path, acc, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()

	ctx := context.Background()
	// all() reproduces the input exactly.
	got, err := s.all(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pos) {
		t.Fatalf("all: %d pages, want %d", len(got), len(pos))
	}
	for i := range pos {
		if got[i].src != pos[i].src || len(got[i].ops) != len(pos[i].ops) {
			t.Fatalf("all: page %d mismatch", i)
		}
		for j := range pos[i].ops {
			if got[i].ops[j] != pos[i].ops[j] {
				t.Fatalf("all: page %d op %d mismatch", i, j)
			}
		}
	}
	// Point lookups agree and are charged.
	before := acc.Stats().Reads
	for _, po := range pos {
		m := map[webgraph.PageID]Op{}
		read, err := s.opsInto(ctx, po.src, m)
		if err != nil || !read {
			t.Fatalf("opsInto(%d) = %v, %v", po.src, read, err)
		}
		if len(m) != len(po.ops) {
			t.Fatalf("opsInto(%d): %d ops, want %d", po.src, len(m), len(po.ops))
		}
		for _, e := range po.ops {
			if m[e.dst] != e.op {
				t.Fatalf("opsInto(%d): dst %d = %v, want %v", po.src, e.dst, m[e.dst], e.op)
			}
		}
	}
	if acc.Stats().Reads == before {
		t.Fatal("point lookups performed no charged reads")
	}
	// Missing sources probe without I/O.
	before = acc.Stats().Reads
	if _, ok := s.find(webgraph.PageID(n + 10)); ok {
		t.Fatal("find located a missing source")
	}
	if acc.Stats().Reads != before {
		t.Fatal("find performed I/O")
	}
}

func TestSegmentRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	acc := iosim.NewAccountant(iosim.Model2002())

	bad := filepath.Join(dir, "bad-magic.delta")
	if err := os.WriteFile(bad, []byte("NOTDELTAxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSegment(bad, acc, 1); err == nil {
		t.Fatal("openSegment accepted bad magic")
	}

	trunc := filepath.Join(dir, "trunc.delta")
	if err := writeSegmentFile(trunc, []pageOps{{src: 0, ops: []dstOp{{dst: 1, op: OpAdd}}}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trunc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trunc, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSegment(trunc, acc, 1); err == nil {
		t.Fatal("openSegment accepted truncated data region")
	}
}

func TestMemtableSealBarrier(t *testing.T) {
	// Writers hammer a memtable while it is sealed; every mutation that
	// apply() accepted must be in the snapshot, every rejected one must
	// not have mutated it.
	mt := newMemtable()
	const writers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := map[webgraph.PageID]bool{}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				src := webgraph.PageID(w*10000 + i)
				if mt.apply(Mutation{Src: src, Dst: 1, Op: OpAdd}) {
					mu.Lock()
					accepted[src] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	mt.seal()
	snap := mt.snapshot()
	wg.Wait()

	inSnap := map[webgraph.PageID]bool{}
	for _, po := range snap {
		inSnap[po.src] = true
	}
	// seal() returns only after in-flight appliers finish, so the
	// snapshot must contain at least every apply accepted before the
	// barrier; late accepts are impossible by construction (apply
	// checks the flag under the shard lock).
	mu.Lock()
	defer mu.Unlock()
	for src := range accepted {
		if !inSnap[src] {
			t.Fatalf("accepted mutation for src %d missing from snapshot", src)
		}
	}
	if int64(len(inSnap)) != mt.len() {
		t.Fatalf("entries = %d, snapshot = %d", mt.len(), len(inSnap))
	}
}

func TestOverlayStatsAndMetrics(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := snode.Build(crawl.Corpus, snode.DefaultConfig(), dir); err != nil {
		t.Fatal(err)
	}
	rep, err := snode.Open(dir, 1<<20, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOverlay(rep, Config{
		Pages: crawl.Corpus.Pages,
		Dir:   t.TempDir(),
		Model: iosim.Model2002(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	defer rep.Close()

	ctx := context.Background()
	if err := o.Apply(ctx, []Mutation{{Src: 0, Dst: 5, Op: OpAdd}}); err != nil {
		t.Fatal(err)
	}
	if err := o.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	o.ResetStats()
	// A merged lookup reads base + segment; aggregated stats must
	// exceed the base's own accounting.
	if _, err := o.Out(0, nil); err != nil {
		t.Fatal(err)
	}
	agg, baseOnly := o.Stats(), rep.Stats()
	if agg.IO.BytesRead <= baseOnly.IO.BytesRead {
		t.Fatalf("aggregated bytes %d not above base %d", agg.IO.BytesRead, baseOnly.IO.BytesRead)
	}
	if agg.GraphsLoaded <= baseOnly.GraphsLoaded {
		t.Fatal("segment reads not counted as load units")
	}

	reg := metrics.NewRegistry()
	o.RegisterMetrics(reg, "delta")
	snap := reg.Snapshot()
	found := map[string]bool{}
	for name := range snap.Counters {
		found[name] = true
	}
	for name := range snap.Gauges {
		found[name] = true
	}
	for _, want := range []string{
		"delta_memtable_bytes", "delta_segments", "delta_compactions",
		"delta_applied_ops", "delta_merge_bytes_in", "delta_merge_bytes_out",
		"delta_io_reads",
	} {
		if !found[want] {
			t.Fatalf("metric %s not registered (have %v)", want, found)
		}
	}

	// Name and size reporting.
	if o.Name() != "snode+delta" {
		t.Fatalf("Name = %q", o.Name())
	}
	if o.SizeBytes() <= rep.SizeBytes() {
		t.Fatal("SizeBytes does not include the delta")
	}
}

func TestCompactorPolicy(t *testing.T) {
	base := smallBase()
	o := newTestOverlay(t, base)
	ctx := context.Background()

	c := &Compactor{o: o, cfg: CompactorConfig{
		SealBytes:   1, // any non-empty memtable seals
		MaxSegments: 2,
	}}
	c.cfg.defaults()
	rng := randutil.NewRNG(42)
	var all []Mutation
	for round := 0; round < 6; round++ {
		muts := testMutations(base.NumPages(), rng, 30)
		if err := o.Apply(ctx, muts); err != nil {
			t.Fatal(err)
		}
		all = append(all, muts...)
		if err := c.RunOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if got := o.SegmentCount(); got > 2 {
			t.Fatalf("round %d: %d segments above tier limit", round, got)
		}
	}
	checkAll(t, o, expected(base.adj, base.NumPages(), all), "compacted")
	ds := o.DeltaStatsNow()
	if ds.Seals < 6 || ds.Compactions == 0 {
		t.Fatalf("stats = %+v", ds)
	}
	if ds.MemtableEntries != 0 {
		t.Fatalf("memtable not drained: %+v", ds)
	}
}

func TestCompactorBackground(t *testing.T) {
	base := smallBase()
	o := newTestOverlay(t, base)
	ctx := context.Background()

	var errMu sync.Mutex
	var bgErr error
	c := StartCompactor(ctx, o, CompactorConfig{
		Interval:    time.Millisecond,
		SealBytes:   1,
		MaxSegments: 2,
		OnError: func(err error) {
			errMu.Lock()
			bgErr = err
			errMu.Unlock()
		},
	})
	rng := randutil.NewRNG(9)
	var all []Mutation
	for i := 0; i < 20; i++ {
		muts := testMutations(base.NumPages(), rng, 10)
		if err := o.Apply(ctx, muts); err != nil {
			t.Fatal(err)
		}
		all = append(all, muts...)
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	errMu.Lock()
	if bgErr != nil {
		t.Fatalf("background error: %v", bgErr)
	}
	errMu.Unlock()
	checkAll(t, o, expected(base.adj, base.NumPages(), all), "background")
}
