package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/trace"
)

// traceServer builds a server whose serve layer AND engine share one
// tracer, the way snserve wires a shard replica.
func traceServer(t *testing.T, tr *trace.Tracer) *Server {
	t.Helper()
	r, _ := getRepo(t)
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	e.SetTracer(tr)
	s, err := New(Config{Engine: e, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doTraced(t *testing.T, s *Server, path, header string) *http.Response {
	t.Helper()
	srv := s.Handler()
	req, err := http.NewRequest(http.MethodGet, "http://shard"+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if header != "" {
		req.Header.Set(trace.HeaderTrace, header)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Result()
}

// Regression: the sampled bit must propagate even when router and
// shard SampleEvery differ. A shard with SampleEvery=0 — local
// sampling disabled — must still trace a parent-sampled request, and
// answer with the local trace ID so the router can stitch it.
func TestRemoteSampledBitForcesTraceAtSampleEveryZero(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 0})
	s := traceServer(t, tr)

	resp := doTraced(t, s, "/out?page=3", trace.FormatHeader(77, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	idStr := resp.Header.Get(trace.HeaderTraceID)
	if idStr == "" {
		t.Fatal("parent-sampled request returned no X-SNode-Trace-Id")
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	forced := tr.Get(id)
	if forced == nil {
		t.Fatal("forced trace not retained for fetch-by-ID export")
	}
	if forced.ParentID != 77 {
		t.Fatalf("ParentID = %d, want the router's 77", forced.ParentID)
	}
	if forced.Total() == 0 {
		t.Fatal("forced trace not finished before the response was written")
	}
	names := spanNames(forced.JSON().Root)
	if !names["serve.admission"] {
		t.Fatalf("forced trace missing serve.admission span: %v", names)
	}
	if attrs := forced.JSON().Root.Attrs; attrs["admission_wait_ns"] < 0 {
		t.Fatalf("missing admission_wait_ns attribution: %v", attrs)
	}

	// Parent traced but NOT sampled: no forced trace, no header.
	resp = doTraced(t, s, "/out?page=3", trace.FormatHeader(78, false))
	if got := resp.Header.Get(trace.HeaderTraceID); got != "" {
		t.Fatalf("unsampled parent produced a trace header %q", got)
	}

	// No header at all: nothing traced, nothing returned.
	resp = doTraced(t, s, "/out?page=3", "")
	if got := resp.Header.Get(trace.HeaderTraceID); got != "" {
		t.Fatalf("untraced request produced a trace header %q", got)
	}
}

// Regression: forced sampling must not leak into the shard's own
// 1-in-N rotation. With SampleEvery=3, two local requests then a
// forced one must leave the third local request as the one sampled.
func TestForcedSamplingDoesNotLeakIntoRotation(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 3})
	s := traceServer(t, tr)

	for i := 0; i < 2; i++ {
		resp := doTraced(t, s, "/out?page=3", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	resp := doTraced(t, s, "/out?page=3", trace.FormatHeader(99, true))
	if resp.Header.Get(trace.HeaderTraceID) == "" {
		t.Fatal("forced request not traced")
	}
	// The forced request must not have consumed rotation slot 3: this
	// third LOCAL request is the one the 1-in-3 sampler picks.
	if resp := doTraced(t, s, "/out?page=3", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	var forced, local int
	for _, tc := range tr.Traces() {
		if tc.ParentID != 0 {
			forced++
		} else {
			local++
		}
	}
	if forced != 1 || local != 1 {
		t.Fatalf("retained %d forced / %d local traces, want 1/1 "+
			"(forced sampling perturbed the rotation)", forced, local)
	}
}

// A mining-class forced trace covers the partial path too: the routed
// scatter legs are ?partial=1 requests.
func TestRemoteSampledBitForcesTraceOnPartialQuery(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 0})
	s := traceServer(t, tr)
	resp := doTraced(t, s, "/query?q=1&partial=1", trace.FormatHeader(55, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	idStr := resp.Header.Get(trace.HeaderTraceID)
	if idStr == "" {
		t.Fatal("partial leg returned no trace header")
	}
	id, _ := strconv.ParseUint(idStr, 10, 64)
	forced := tr.Get(id)
	if forced == nil || forced.ParentID != 55 || forced.Class != ClassMining {
		t.Fatalf("forced partial trace = %+v", forced)
	}
	if !spanNames(forced.JSON().Root)["serve.admission"] {
		t.Fatal("partial trace missing serve.admission")
	}
}

// The cross-process untraced path — every request reads the
// propagation header — must stay allocation-free and emit no header.
// Wired into make check-overhead.
func TestCrossProcessUntracedZeroAlloc(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 0})
	s := traceServer(t, tr)
	req, err := http.NewRequest(http.MethodGet, "http://shard/out?page=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var leaked bool
	allocs := testing.AllocsPerRun(200, func() {
		got, forced := s.startRemote(ctx, req, ClassNav)
		if forced != nil || got != ctx {
			leaked = true
		}
	})
	if leaked {
		t.Fatal("untraced request produced a trace or a derived context")
	}
	if allocs != 0 {
		t.Fatalf("untraced cross-process path allocates %.1f/op, want 0", allocs)
	}
}

// spanNames flattens an exported span tree into a name set.
func spanNames(root *trace.SpanJSON) map[string]bool {
	out := map[string]bool{}
	var walk func(*trace.SpanJSON)
	walk = func(s *trace.SpanJSON) {
		if s == nil {
			return
		}
		out[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}
