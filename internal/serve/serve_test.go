package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"snode/internal/admission"
	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

var (
	testRepo  *repo.Repository
	testCrawl *synth.Crawl
)

func getRepo(t testing.TB) (*repo.Repository, *synth.Crawl) {
	t.Helper()
	if testRepo != nil {
		return testRepo, testCrawl
	}
	crawl, err := synth.Generate(synth.DefaultConfig(6000))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "serve-test-*")
	if err != nil {
		t.Fatal(err)
	}
	opt := repo.DefaultOptions(dir)
	opt.Schemes = []string{repo.SchemeSNode}
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatalf("repo.Build: %v", err)
	}
	testRepo, testCrawl = r, crawl
	return r, crawl
}

// newTestServer builds a serve.Server plus its engine over the shared
// test repository.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	r, _ := getRepo(t)
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = e
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// snodeReps returns the forward and reverse S-Node representations
// behind the test repository (for pacing and inflight checks).
func snodeReps(t *testing.T) []*snode.Representation {
	t.Helper()
	r, _ := getRepo(t)
	out := []*snode.Representation{
		r.Fwd[repo.SchemeSNode].(*snode.Representation),
	}
	if rev, ok := r.Rev[repo.SchemeSNode].(*snode.Representation); ok {
		out = append(out, rev)
	}
	return out
}

func TestOutEndpointServesCorrectRows(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, crawl := getRepo(t)

	for _, p := range []webgraph.PageID{0, 17, 4242} {
		resp, err := http.Get(fmt.Sprintf("%s/out?page=%d", ts.URL, p))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("/out?page=%d: status %d: %s", p, resp.StatusCode, body)
		}
		var out OutResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := append([]webgraph.PageID(nil), out.Neighbors...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := crawl.Corpus.Graph.Out(p)
		if len(got) != len(want) {
			t.Fatalf("page %d: %d neighbors over HTTP, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("page %d neighbor %d: got %d, want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestQueryEndpointServesRows(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query?q=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/query?q=1: status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Query != 1 || len(qr.Rows) == 0 {
		t.Fatalf("query response %+v: want query 1 with rows", qr)
	}
}

func TestBadParamsAre400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{
		"/out?page=xyz", "/out", "/query?q=0", "/query?q=7", "/query",
		"/out?page=3&deadline_ms=abc", "/out?page=3&deadline_ms=-5",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestDeadlinePropagatesThroughHTTP is the satellite deadline test: a
// request with a short ?deadline_ms against a paced, thrashing-cache
// store must be cancelled MID-QUERY — the engine/reader observes
// ctx.Err, not the HTTP layer timing out — answer with the shed status
// (429 + Retry-After, reason deadline), return promptly, and leave no
// in-flight cache decode claimed.
func TestDeadlinePropagatesThroughHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reps := snodeReps(t)
	for _, rep := range reps {
		rep.ResetCache(64 << 10) // thrash: every lookup pays modeled I/O
		rep.SetPace(5.0)         // ~45ms real stall per cold span read
	}
	defer func() {
		for _, rep := range reps {
			rep.SetPace(0)
			rep.ResetCache(16 << 20)
		}
	}()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/query?q=3&deadline_ms=5")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("short-deadline query: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	var shed shedResponse
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if shed.Reason != admission.ReasonDeadline {
		t.Fatalf("shed reason %q, want %q (ctx deadline observed mid-query)", shed.Reason, admission.ReasonDeadline)
	}
	if shed.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", shed.RetryAfterMS)
	}
	// Q3 against the paced, thrashing store takes seconds; a propagated
	// 30ms deadline must cut the response to well under that.
	if elapsed > 2*time.Second {
		t.Fatalf("shed response took %v; deadline did not propagate into the engine", elapsed)
	}
	// No orphaned in-flight decode: the cancelled request's claims were
	// all completed by their leaders.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := int64(0)
		for _, rep := range reps {
			n += rep.InflightDecodes()
		}
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d in-flight decodes still claimed after cancelled request", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The server must still serve normally afterwards.
	for _, rep := range reps {
		rep.SetPace(0)
		rep.ResetCache(16 << 20)
	}
	resp2, err := http.Get(ts.URL + "/query?q=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query after cancelled request: status %d", resp2.StatusCode)
	}
}

// TestOutRejectsNegativePage is the negative-page-ID regression test:
// page=-5 parses fine as an int32, and before the fix it reached the
// engine as a negative PageID instead of answering 400.
func TestOutRejectsNegativePage(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, page := range []string{"-1", "-5", "-2147483648"} {
		resp, err := http.Get(ts.URL + "/out?page=" + page)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/out?page=%s: status %d, want 400", page, resp.StatusCode)
		}
	}
}

// TestLatencyObservedOnShed is the latency-bias regression test: an
// ADMITTED request that is shed mid-query (deadline fires inside the
// engine) still occupied an execution slot end-to-end, and its latency
// must land in serve_latency_mining — before the fix only the success
// path observed, biasing the p99 the load harness reports at the knee.
func TestLatencyObservedOnShed(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})
	reps := snodeReps(t)
	for _, rep := range reps {
		rep.ResetCache(64 << 10)
		rep.SetPace(5.0)
	}
	defer func() {
		for _, rep := range reps {
			rep.SetPace(0)
			rep.ResetCache(16 << 20)
		}
	}()

	resp, err := http.Get(ts.URL + "/query?q=3&deadline_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("short-deadline query: status %d, want 429 (mid-query shed)", resp.StatusCode)
	}
	h, ok := reg.Snapshot().Histograms["serve_latency_mining"]
	if !ok {
		t.Fatal("serve_latency_mining not registered")
	}
	if h.Count != 1 {
		t.Fatalf("serve_latency_mining count = %d after a mid-query shed, want 1 (admitted requests always observe)", h.Count)
	}
}

// TestQueueFullShedsWith429: with one slot held and the one queue seat
// taken, the next arrival is shed queue_full with 429 + Retry-After.
func TestQueueFullShedsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	ctrl := s.Admission()

	// Hold the only execution slot directly.
	release, err := ctrl.Acquire(t.Context(), ClassMining)
	if err != nil {
		t.Fatal(err)
	}

	// One request queues (async; it completes after release).
	queued := make(chan *http.Response, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/query?q=1")
		if err == nil {
			queued <- resp
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: this one must shed fast.
	resp, err := http.Get(ts.URL + "/query?q=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("overflow request: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	var shed shedResponse
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if shed.Reason != admission.ReasonQueueFull {
		t.Fatalf("shed reason %q, want %q", shed.Reason, admission.ReasonQueueFull)
	}

	// Release the slot: the queued request must be admitted and succeed.
	release()
	wg.Wait()
	select {
	case r2 := <-queued:
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("queued request: status %d after slot freed", r2.StatusCode)
		}
		r2.Body.Close()
	default:
		t.Fatal("queued request never completed")
	}

	st := ctrl.Stats()[ClassMining]
	if st.Offered != st.Admitted+st.Shed {
		t.Fatalf("admission accounting: offered %d != admitted %d + shed %d",
			st.Offered, st.Admitted, st.Shed)
	}
	if st.Shed == 0 {
		t.Fatal("shed counter is zero despite a 429")
	}
}

// TestServeMetricsRegistered: the serving registry carries the
// admission counters and per-class latency histograms.
func TestServeMetricsRegistered(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})
	for _, url := range []string{ts.URL + "/out?page=5", ts.URL + "/query?q=2"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"admission_nav_offered", "admission_nav_admitted", "admission_nav_shed",
		"admission_mining_offered", "admission_mining_admitted", "admission_mining_shed",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q not registered", name)
		}
	}
	if snap.Counters["admission_nav_admitted"] != 1 || snap.Counters["admission_mining_admitted"] != 1 {
		t.Errorf("admitted counters = %d/%d, want 1/1",
			snap.Counters["admission_nav_admitted"], snap.Counters["admission_mining_admitted"])
	}
	for _, name := range []string{"serve_latency_nav", "serve_latency_mining"} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("histogram %q not registered", name)
			continue
		}
		if h.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, h.Count)
		}
	}
}
