// Package serve is the HTTP query surface of the serving tier: the
// /out (navigation-class) and /query (mining-class) endpoints that
// snserve mounts and the open-loop load harness drives. It owns the
// request lifecycle the robustness work of this layer is about:
//
//   - Class split: /out resolves one page's adjacency (the "click a
//     link" traffic class, "nav"), /query runs one of the paper's six
//     Table 3 analyses (the heavy "mining" class). The admission
//     controller prioritizes nav over mining.
//   - Deadline propagation: every request gets a context deadline —
//     the client's ?deadline_ms, clamped, or the server default — and
//     that context flows through admission, the engine, the S-Node
//     reader, and the paced I/O layer, so a dead request stops
//     consuming the serving stack at the next checkpoint.
//   - Load shedding: requests the admission layer rejects (full queue,
//     unmeetable deadline) and requests whose deadline fires while
//     queued or mid-query are answered with 429 plus a Retry-After
//     hint instead of occupying a slot to completion. From the
//     client's perspective both mean the same thing: not served,
//     back off and retry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"snode/internal/admission"
	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

// Request classes (admission queue names, metric labels).
const (
	ClassNav    = "nav"
	ClassMining = "mining"
)

// ShardInfo marks a server as one shard of a domain-partitioned
// corpus behind a scatter-gather router (cmd/snrouter).
type ShardInfo struct {
	// ID is this shard's index in [0, Count).
	ID int
	// Count is the total shard count K.
	Count int
	// Version is the shard-manifest version the artifacts were built
	// under; the router rejects replicas whose version does not match
	// its manifest (build/serve version skew).
	Version string
}

// Config sizes a Server.
type Config struct {
	// Engine executes the queries. Required. The server derives a
	// Shared copy, so one engine may also be used elsewhere.
	Engine *query.Engine
	// NavEngine, when set, serves /out instead of Engine. Shard mode
	// wires the intra-shard base store here — /out then returns only
	// the edges this shard owns, and the router resolves cross-shard
	// edges through the boundary store — while Engine keeps the
	// boundary-merged stores so mining partials are exact.
	NavEngine *query.Engine
	// Shard, when set, marks this server as one shard of a partitioned
	// corpus: every query response carries X-SNode-Shard /
	// X-SNode-Shard-Version headers, and /query accepts ?partial=1,
	// answering with untruncated group-tagged partial rows for the
	// router's per-query-class merge instead of the final rows.
	Shard *ShardInfo
	// MaxConcurrent bounds requests executing simultaneously
	// (admission slots; <= 0 selects GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds each class's admission wait queue (<= 0 selects
	// 64). Arrivals past a full queue are shed with 429.
	MaxQueue int
	// DefaultDeadline is applied to requests that do not send
	// ?deadline_ms (0 = no default deadline).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines (default 30s).
	MaxDeadline time.Duration
	// Registry, when set, receives the serving metrics: the admission
	// counters under "admission_*" and per-class end-to-end latency
	// histograms serve_latency_nav / serve_latency_mining.
	Registry *metrics.Registry
	// Tracer, when set, honors cross-process trace propagation: a
	// request carrying a sampled X-SNode-Trace header (a routed leg
	// whose router-side trace was sampled) is force-traced under this
	// tracer regardless of its SampleEvery — including SampleEvery 0 —
	// without consuming a slot in its 1-in-N rotation. The completed
	// local trace's ID is returned in the X-SNode-Trace-Id response
	// header so the router can fetch the span subtree from this
	// process's /debug/traces export and stitch it. Requests without
	// the header read one absent header and allocate nothing.
	Tracer *trace.Tracer
}

// Server handles the query endpoints. Safe for concurrent use.
type Server struct {
	eng             *query.Engine
	navEng          *query.Engine // /out engine (== eng unless Config.NavEngine)
	ctrl            *admission.Controller
	defaultDeadline time.Duration
	maxDeadline     time.Duration
	shard           *ShardInfo
	tracer          *trace.Tracer

	navHist    *metrics.Histogram // end-to-end admitted-request latency
	miningHist *metrics.Histogram
}

// New builds a server over the engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Config.Engine is required")
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 30 * time.Second
	}
	ctrl, err := admission.New(admission.Config{
		MaxConcurrent: cfg.MaxConcurrent,
		Classes: []admission.ClassConfig{
			{Name: ClassNav, MaxQueue: cfg.MaxQueue},
			{Name: ClassMining, MaxQueue: cfg.MaxQueue},
		},
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		eng:             cfg.Engine.Shared(),
		ctrl:            ctrl,
		defaultDeadline: cfg.DefaultDeadline,
		maxDeadline:     cfg.MaxDeadline,
		shard:           cfg.Shard,
		tracer:          cfg.Tracer,
	}
	s.navEng = s.eng
	if cfg.NavEngine != nil {
		s.navEng = cfg.NavEngine.Shared()
	}
	if cfg.Registry != nil {
		ctrl.RegisterMetrics(cfg.Registry, "admission")
		s.navHist = cfg.Registry.Histogram("serve_latency_nav", nil)
		s.miningHist = cfg.Registry.Histogram("serve_latency_mining", nil)
	}
	return s, nil
}

// setShardHeaders stamps shard identity on a response so the router
// can verify it is talking to the replica set its manifest describes.
func (s *Server) setShardHeaders(w http.ResponseWriter) {
	if s.shard == nil {
		return
	}
	w.Header().Set("X-SNode-Shard", fmt.Sprintf("%d/%d", s.shard.ID, s.shard.Count))
	w.Header().Set("X-SNode-Shard-Version", s.shard.Version)
}

// Admission exposes the controller (stats for the load harness and
// tests).
func (s *Server) Admission() *admission.Controller { return s.ctrl }

// Register mounts the query endpoints on mux: /out and /query.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/out", s.handleOut)
	mux.HandleFunc("/query", s.handleQuery)
}

// Handler returns a standalone handler serving only the query
// endpoints (the in-process load harness mounts this).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// deadlineCtx derives the request's execution context: the client's
// ?deadline_ms clamped to MaxDeadline, else the server default, else
// the bare request context (which still dies when the client hangs
// up — http.Server cancels it).
func (s *Server) deadlineCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	d := s.defaultDeadline
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad deadline_ms %q", raw)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.maxDeadline {
		d = s.maxDeadline
	}
	if d <= 0 {
		return ctx, func() {}, nil
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// startRemote honors cross-process trace propagation: when the request
// carries a sampled X-SNode-Trace header and a tracer is configured,
// the request is force-traced (trace.Tracer.StartLinked — no local
// sampling decision, no rotation slot consumed). The common untraced
// case is one canonical header lookup and a length check: no
// allocations (check-overhead pins this).
func (s *Server) startRemote(ctx context.Context, r *http.Request, class string) (context.Context, *trace.Trace) {
	if s.tracer == nil {
		return ctx, nil
	}
	parent, sampled, ok := trace.ParseHeader(r.Header.Get(trace.HeaderTrace))
	if !ok || !sampled {
		return ctx, nil
	}
	return s.tracer.StartLinked(ctx, class, parent)
}

// finishRemote completes a force-sampled trace and points the caller
// at it: the response header carries the local trace ID, fetchable at
// this process's /debug/traces?id=N while retained. Must run before
// the response status is written (headers freeze at WriteHeader);
// callers invoke it at every exit and keep a deferred call as a
// backstop so the trace is finished even on a panic-recovered path.
// Idempotent via the cleared pointer.
func (s *Server) finishRemote(w http.ResponseWriter, forced **trace.Trace) {
	if *forced == nil {
		return
	}
	s.tracer.Finish(*forced)
	w.Header().Set(trace.HeaderTraceID, strconv.FormatUint((*forced).ID, 10))
	*forced = nil
}

// shedResponse is the 429 body.
type shedResponse struct {
	Error        string `json:"error"`
	Class        string `json:"class"`
	Reason       string `json:"reason"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// writeShed answers a request that was not served to completion: an
// admission reject, or a deadline/cancellation observed anywhere down
// the stack. Always 429 + Retry-After — the uniform "not served, back
// off" signal the open-loop clients key on.
func (s *Server) writeShed(w http.ResponseWriter, class string, err error) {
	reason := admission.ReasonDeadline
	retryAfter := s.ctrl.EstimatedService()
	var shed *admission.ShedError
	if errors.As(err, &shed) {
		reason = shed.Reason
		retryAfter = shed.RetryAfter
	} else if errors.Is(err, context.Canceled) {
		reason = admission.ReasonCanceled
	}
	// Retry-After is whole seconds in HTTP; round up so "retry after
	// 200ms" never becomes "retry immediately".
	w.Header().Set("Retry-After", strconv.FormatInt(int64(math.Ceil(retryAfter.Seconds())), 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(shedResponse{
		Error:        err.Error(),
		Class:        class,
		Reason:       reason,
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}

// isShed reports whether err means "request not served, retryable":
// an admission reject or a propagated deadline/cancellation.
func isShed(err error) bool {
	var shed *admission.ShedError
	return errors.As(err, &shed) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// OutResponse is the /out body.
type OutResponse struct {
	Page      webgraph.PageID   `json:"page"`
	Neighbors []webgraph.PageID `json:"neighbors"`
}

// handleOut serves the navigation class: one page's out-adjacency, in
// canonical ascending page-ID order (the order is part of the contract
// so the router's boundary merge reproduces a single-node response
// row-identically).
func (s *Server) handleOut(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.setShardHeaders(w)
	raw := r.URL.Query().Get("page")
	page, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || page < 0 {
		// page < 0 parses fine but is never a valid PageID; letting it
		// through used to hand a negative index to the engine.
		http.Error(w, fmt.Sprintf("bad page %q", raw), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := s.deadlineCtx(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	ctx, forced := s.startRemote(ctx, r, ClassNav)
	defer s.finishRemote(w, &forced)
	acqStart := time.Now()
	release, err := s.ctrl.Acquire(ctx, ClassNav)
	if err != nil {
		s.finishRemote(w, &forced)
		s.writeShed(w, ClassNav, err)
		return
	}
	wait := time.Since(acqStart)
	defer release()
	if trace.Active(ctx) {
		// The forced trace is open across the admission wait, so the
		// stitched subtree shows queueing as its own span (engine-
		// sampled traces start later and get only the root attribute).
		trace.RecordSpan(ctx, "serve.admission", acqStart, wait)
	}
	if s.navHist != nil {
		// Every admitted request observes its end-to-end latency, not
		// just the ones that complete: a request shed mid-query or
		// failing in the engine occupied a slot for exactly this long,
		// and dropping those samples biases the reported p99 at the knee.
		defer func() { s.navHist.ObserveDuration(time.Since(start)) }()
	}
	neighbors, tr, err := s.navEng.Neighbors(ctx, webgraph.PageID(page))
	if tr == nil {
		tr = forced // cross-process trace: the engine composed into it
	}
	if tr != nil {
		// The trace starts inside the engine, after the admission wait
		// has already elapsed; attribute it on the root after the fact
		// (same idiom as RunParallel's queue_wait_ns).
		tr.SetAttr("admission_wait_ns", int64(wait))
	}
	s.finishRemote(w, &forced)
	if err != nil {
		if isShed(err) {
			s.writeShed(w, ClassNav, err)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if neighbors == nil {
		neighbors = []webgraph.PageID{}
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(OutResponse{Page: webgraph.PageID(page), Neighbors: neighbors})
}

// QueryResponse is the /query body.
type QueryResponse struct {
	Query int         `json:"query"`
	Rows  []query.Row `json:"rows"`
	NavMS float64     `json:"nav_ms"`
}

// PartialQueryResponse is the /query?partial=1 body a shard returns
// for the router's merge: untruncated, group-tagged rows.
type PartialQueryResponse struct {
	Query    int                `json:"query"`
	Shard    int                `json:"shard"`
	Partials []query.PartialRow `json:"partials"`
	NavMS    float64            `json:"nav_ms"`
}

// handleQuery serves the mining class: one Table 3 analysis. With
// ?partial=1 (the router's scatter request) it answers with the
// shard's untruncated partial rows instead of the final merged rows.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.setShardHeaders(w)
	raw := r.URL.Query().Get("q")
	qn, err := strconv.Atoi(raw)
	if err != nil || qn < int(query.Q1) || qn > int(query.Q6) {
		http.Error(w, fmt.Sprintf("bad q %q (want 1..6)", raw), http.StatusBadRequest)
		return
	}
	partial := r.URL.Query().Get("partial") == "1"
	ctx, cancel, err := s.deadlineCtx(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	ctx, forced := s.startRemote(ctx, r, ClassMining)
	defer s.finishRemote(w, &forced)
	acqStart := time.Now()
	release, err := s.ctrl.Acquire(ctx, ClassMining)
	if err != nil {
		s.finishRemote(w, &forced)
		s.writeShed(w, ClassMining, err)
		return
	}
	wait := time.Since(acqStart)
	defer release()
	if trace.Active(ctx) {
		trace.RecordSpan(ctx, "serve.admission", acqStart, wait)
	}
	if forced != nil {
		forced.SetAttr("admission_wait_ns", int64(wait))
	}
	if s.miningHist != nil {
		// See handleOut: every admitted request observes latency,
		// whether it completes, errors, or is shed mid-query.
		defer func() { s.miningHist.ObserveDuration(time.Since(start)) }()
	}
	if partial {
		s.servePartial(ctx, w, query.ID(qn), &forced)
		return
	}
	res, err := s.eng.Run(ctx, query.ID(qn))
	if err == nil && res.Trace != nil {
		res.Trace.SetAttr("admission_wait_ns", int64(wait))
	}
	s.finishRemote(w, &forced)
	if err != nil {
		if isShed(err) {
			s.writeShed(w, ClassMining, err)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	rows := res.Rows
	if rows == nil {
		rows = []query.Row{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(QueryResponse{
		Query: qn,
		Rows:  rows,
		NavMS: float64(res.Nav.Total()) / float64(time.Millisecond),
	})
}

// servePartial answers one scatter leg of a routed mining query.
func (s *Server) servePartial(ctx context.Context, w http.ResponseWriter, q query.ID, forced **trace.Trace) {
	res, err := s.eng.RunPartial(ctx, q)
	s.finishRemote(w, forced)
	if err != nil {
		if isShed(err) {
			s.writeShed(w, ClassMining, err)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	rows := res.Rows
	if rows == nil {
		rows = []query.PartialRow{}
	}
	shardID := 0
	if s.shard != nil {
		shardID = s.shard.ID
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(PartialQueryResponse{
		Query:    int(q),
		Shard:    shardID,
		Partials: rows,
		NavMS:    float64(res.Nav.Total()) / float64(time.Millisecond),
	})
}
