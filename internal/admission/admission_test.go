package admission

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snode/internal/metrics"
)

// newTest builds a controller with the canonical two-class serving
// config: nav (high priority) ahead of mining.
func newTest(t *testing.T, maxConcurrent, navQueue, miningQueue int) *Controller {
	t.Helper()
	c, err := New(Config{
		MaxConcurrent: maxConcurrent,
		Classes: []ClassConfig{
			{Name: "nav", MaxQueue: navQueue},
			{Name: "mining", MaxQueue: miningQueue},
		},
		EstService: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// fillSlots admits n requests and returns their release funcs.
func fillSlots(t *testing.T, c *Controller, class string, n int) []func() {
	t.Helper()
	rels := make([]func(), n)
	for i := range rels {
		rel, err := c.Acquire(context.Background(), class)
		if err != nil {
			t.Fatalf("fillSlots Acquire %d: %v", i, err)
		}
		rels[i] = rel
	}
	return rels
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"no classes", Config{}, true},
		{"empty class name", Config{Classes: []ClassConfig{{Name: ""}}}, true},
		{"duplicate class", Config{Classes: []ClassConfig{{Name: "a"}, {Name: "a"}}}, true},
		{"ok", Config{Classes: []ClassConfig{{Name: "a"}, {Name: "b"}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%+v) err = %v, wantErr %v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

func TestAcquireUnknownClass(t *testing.T) {
	c := newTest(t, 1, 4, 4)
	if _, err := c.Acquire(context.Background(), "nope"); err == nil {
		t.Fatal("Acquire of unknown class succeeded")
	}
}

func TestFastPathAdmitsUpToMax(t *testing.T) {
	c := newTest(t, 3, 4, 4)
	rels := fillSlots(t, c, "nav", 3)
	if got := c.Running(); got != 3 {
		t.Fatalf("Running = %d, want 3", got)
	}
	for _, rel := range rels {
		rel()
	}
	if got := c.Running(); got != 0 {
		t.Fatalf("Running after release = %d, want 0", got)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c := newTest(t, 2, 4, 4)
	rel, err := c.Acquire(context.Background(), "nav")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not free a second slot
	if got := c.Running(); got != 0 {
		t.Fatalf("Running = %d, want 0", got)
	}
	// Both slots must still be usable.
	fillSlots(t, c, "nav", 2)
	if got := c.Running(); got != 2 {
		t.Fatalf("Running = %d, want 2", got)
	}
}

// TestQueueFIFOWithinClass: waiters of one class are admitted in
// arrival order.
func TestQueueFIFOWithinClass(t *testing.T) {
	c := newTest(t, 1, 8, 8)
	rels := fillSlots(t, c, "nav", 1)

	const n = 5
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Enqueue strictly one at a time so arrival order is defined.
		i := i
		ready := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			close(ready)
			rel, err := c.Acquire(context.Background(), "nav")
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			rel()
		}()
		<-ready
		waitForDepth(t, c, i+1)
	}

	rels[0]() // slot frees; the chain of releases drains the queue
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order = %v, want FIFO 0..%d", order, n-1)
		}
	}
}

// waitForDepth blocks until the controller's queue depth reaches want.
func waitForDepth(t *testing.T, c *Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.QueueDepth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d, want %d", c.QueueDepth(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestPriorityAcrossClasses: with both classes queued, a freed slot
// goes to nav (higher priority) even if mining waiters arrived first.
func TestPriorityAcrossClasses(t *testing.T) {
	c := newTest(t, 1, 8, 8)
	rels := fillSlots(t, c, "nav", 1)

	type admitted struct {
		class string
		idx   int
	}
	var mu sync.Mutex
	var order []admitted
	var wg sync.WaitGroup
	enqueue := func(class string, idx int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background(), class)
			if err != nil {
				t.Errorf("%s %d: %v", class, idx, err)
				return
			}
			mu.Lock()
			order = append(order, admitted{class, idx})
			mu.Unlock()
			rel()
		}()
	}

	// Mining waiters arrive FIRST, then nav waiters.
	enqueue("mining", 0)
	waitForDepth(t, c, 1)
	enqueue("mining", 1)
	waitForDepth(t, c, 2)
	enqueue("nav", 0)
	waitForDepth(t, c, 3)
	enqueue("nav", 1)
	waitForDepth(t, c, 4)

	rels[0]()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	want := []admitted{{"nav", 0}, {"nav", 1}, {"mining", 0}, {"mining", 1}}
	if len(order) != len(want) {
		t.Fatalf("admitted %d waiters, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order = %v, want nav before mining, FIFO within class (%v)", order, want)
		}
	}
}

// TestShedOnFull: arrivals past a full queue are rejected immediately
// with a *ShedError carrying ReasonQueueFull and a clamped Retry-After.
func TestShedOnFull(t *testing.T) {
	c, err := New(Config{
		MaxConcurrent: 1,
		Classes:       []ClassConfig{{Name: "nav", MaxQueue: 2}},
		EstService:    10 * time.Millisecond,
		MinRetryAfter: 5 * time.Millisecond,
		MaxRetryAfter: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rels := fillSlots(t, c, "nav", 1)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background(), "nav")
			if err != nil {
				t.Errorf("queued waiter shed: %v", err)
				return
			}
			rel()
		}()
	}
	waitForDepth(t, c, 2)

	// Queue is full: the next arrival must shed, not block.
	start := time.Now()
	_, err = c.Acquire(context.Background(), "nav")
	elapsed := time.Since(start)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("Acquire past full queue: err = %v, want *ShedError", err)
	}
	if shed.Reason != ReasonQueueFull {
		t.Fatalf("Reason = %q, want %q", shed.Reason, ReasonQueueFull)
	}
	if shed.Class != "nav" {
		t.Fatalf("Class = %q, want nav", shed.Class)
	}
	if shed.RetryAfter < 5*time.Millisecond || shed.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v outside clamp [5ms, 1s]", shed.RetryAfter)
	}
	if elapsed > time.Second {
		t.Fatalf("shed took %v; fast-reject must not block", elapsed)
	}

	rels[0]()
	wg.Wait()

	st := c.Stats()["nav"]
	if st.Offered != 4 || st.Admitted != 3 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want offered 4 admitted 3 shed 1", st)
	}
	if st.ShedBy[ReasonQueueFull] != 1 {
		t.Fatalf("ShedBy = %v, want %s:1", st.ShedBy, ReasonQueueFull)
	}
}

// TestRetryAfterComputation pins the backlog → Retry-After formula:
// (queued + running) / maxConcurrent * estService, clamped.
func TestRetryAfterComputation(t *testing.T) {
	const est = 10 * time.Millisecond
	cases := []struct {
		name          string
		maxConcurrent int
		running       int
		queued        int
		min, max      time.Duration
		want          time.Duration
	}{
		{"clamped to min", 4, 1, 0, 5 * time.Millisecond, time.Second, 5 * time.Millisecond},
		{"backlog of 8 over 4 slots", 4, 4, 4, time.Millisecond, time.Second, 20 * time.Millisecond},
		{"clamped to max", 1, 1, 63, time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(Config{
				MaxConcurrent: tc.maxConcurrent,
				Classes:       []ClassConfig{{Name: "nav", MaxQueue: 64}},
				EstService:    est,
				MinRetryAfter: tc.min,
				MaxRetryAfter: tc.max,
			})
			if err != nil {
				t.Fatal(err)
			}
			c.mu.Lock()
			c.running = tc.running
			for i := 0; i < tc.queued; i++ {
				c.byName["nav"].waiters = append(c.byName["nav"].waiters, &waiter{ready: make(chan struct{})})
			}
			got := c.retryAfterLocked()
			c.mu.Unlock()
			if got != tc.want {
				t.Fatalf("retryAfter = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestDeadlineAwareShed: a request whose deadline is sooner than the
// estimated queue wait is shed on arrival with ReasonDeadline.
func TestDeadlineAwareShed(t *testing.T) {
	c := newTest(t, 1, 8, 8) // estService 10ms
	defer fillSlots(t, c, "nav", 1)[0]()

	// Stack enough waiters that estimated wait >> 1ms.
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			go func() { <-done; cancel() }()
			if rel, err := c.Acquire(ctx, "nav"); err == nil {
				rel()
			}
		}()
	}
	waitForDepth(t, c, 4)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := c.Acquire(ctx, "nav")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want ShedError with %s", err, ReasonDeadline)
	}

	close(done)
	wg.Wait()
}

// TestCancelWhileQueued: a waiter whose ctx fires while queued is
// removed from the queue and counted shed with ReasonCanceled, and the
// ShedError unwraps to the ctx error.
func TestCancelWhileQueued(t *testing.T) {
	c := newTest(t, 1, 8, 8)
	rels := fillSlots(t, c, "nav", 1)

	// Generous deadline so the deadline-aware early shed (est wait ~10ms)
	// does not trigger; the cancel below is what fires.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, "nav")
		errc <- err
	}()
	waitForDepth(t, c, 1)
	cancel()

	err := <-errc
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonCanceled {
		t.Fatalf("err = %v, want ShedError with %s", err, ReasonCanceled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false; Unwrap must expose ctx error")
	}
	if got := c.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after cancel = %d, want 0", got)
	}

	rels[0]()
	st := c.Stats()["nav"]
	if st.Offered != 2 || st.Admitted != 1 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want offered 2 admitted 1 shed 1", st)
	}
}

// TestRegisterMetricsSnapshot: the exported counters reconcile with
// Stats and the offered == admitted + shed invariant once drained.
func TestRegisterMetricsSnapshot(t *testing.T) {
	c, err := New(Config{
		MaxConcurrent: 1,
		Classes:       []ClassConfig{{Name: "nav", MaxQueue: 1}},
		EstService:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg, "admission")

	rel, err := c.Acquire(context.Background(), "nav")
	if err != nil {
		t.Fatal(err)
	}
	// Slot busy, queue empty → next two arrivals: one queues, one sheds.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if r, err := c.Acquire(context.Background(), "nav"); err == nil {
			r()
		}
	}()
	waitForDepth(t, c, 1)
	if _, err := c.Acquire(context.Background(), "nav"); err == nil {
		t.Fatal("third Acquire should shed")
	}
	rel()
	wg.Wait()

	snap := reg.Snapshot()
	get := func(name string) int64 {
		t.Helper()
		if v, ok := snap.Counters[name]; ok {
			return v
		}
		if v, ok := snap.Gauges[name]; ok {
			return v
		}
		t.Fatalf("metric %q missing from snapshot", name)
		return 0
	}
	offered := get("admission_nav_offered")
	admitted := get("admission_nav_admitted")
	shed := get("admission_nav_shed")
	if offered != 3 || admitted != 2 || shed != 1 {
		t.Fatalf("metrics offered/admitted/shed = %d/%d/%d, want 3/2/1", offered, admitted, shed)
	}
	if offered != admitted+shed {
		t.Fatalf("invariant offered == admitted + shed violated: %d != %d + %d", offered, admitted, shed)
	}
	if d := get("admission_nav_queue_depth"); d != 0 {
		t.Fatalf("queue_depth = %d, want 0 after drain", d)
	}
	if r := get("admission_running"); r != 0 {
		t.Fatalf("running = %d, want 0 after drain", r)
	}
	// Queue wait histogram observed the one queued request.
	h, ok := snap.Histograms["admission_nav_wait_seconds"]
	if !ok {
		t.Fatal("wait histogram missing")
	}
	if h.Count != 1 {
		t.Fatalf("wait histogram count = %d, want 1", h.Count)
	}
}

// TestChaos32Goroutines is the -race accounting stress: 32 goroutines
// hammer Acquire across both classes with random cancellation and
// service times against a small slot count and tiny queues. Afterwards
// every class must satisfy offered == admitted + shed exactly, the
// queues must be empty, and no slot may be leaked.
func TestChaos32Goroutines(t *testing.T) {
	c, err := New(Config{
		MaxConcurrent: 4,
		Classes: []ClassConfig{
			{Name: "nav", MaxQueue: 8},
			{Name: "mining", MaxQueue: 4},
		},
		EstService:    100 * time.Microsecond,
		MinRetryAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg, "admission")

	const (
		goroutines = 32
		perG       = 200
	)
	var (
		wg       sync.WaitGroup
		admitted atomic.Int64
		shed     atomic.Int64
		maxDepth atomic.Int64
	)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			class := "nav"
			if g%2 == 1 {
				class = "mining"
			}
			for i := 0; i < perG; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(4) {
				case 0: // short deadline — may shed on arrival or cancel queued
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				case 1: // racing manual cancel
					ctx, cancel = context.WithCancel(ctx)
					delay := time.Duration(rng.Intn(200)) * time.Microsecond
					go func(cancel context.CancelFunc) {
						time.Sleep(delay)
						cancel()
					}(cancel)
				}
				if d := int64(c.QueueDepth()); d > maxDepth.Load() {
					maxDepth.Store(d)
				}
				rel, err := c.Acquire(ctx, class)
				if err != nil {
					var se *ShedError
					if !errors.As(err, &se) {
						t.Errorf("Acquire returned non-shed error: %v", err)
						cancel()
						return
					}
					shed.Add(1)
					cancel()
					continue
				}
				admitted.Add(1)
				if rng.Intn(3) == 0 {
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
				rel()
				if rng.Intn(8) == 0 {
					rel() // exercise idempotency under race
				}
				cancel()
			}
		}()
	}
	wg.Wait()

	stats := c.Stats()
	var offered, adm, sh int64
	for class, st := range stats {
		if st.Offered != st.Admitted+st.Shed {
			t.Errorf("class %s: offered %d != admitted %d + shed %d",
				class, st.Offered, st.Admitted, st.Shed)
		}
		if st.QueueDepth != 0 {
			t.Errorf("class %s: queue depth %d after drain", class, st.QueueDepth)
		}
		offered += st.Offered
		adm += st.Admitted
		sh += st.Shed
	}
	if want := int64(goroutines * perG); offered != want {
		t.Errorf("total offered = %d, want %d", offered, want)
	}
	if adm != admitted.Load() {
		t.Errorf("controller admitted %d, callers observed %d", adm, admitted.Load())
	}
	if sh != shed.Load() {
		t.Errorf("controller shed %d, callers observed %d", sh, shed.Load())
	}
	if got := c.Running(); got != 0 {
		t.Errorf("Running = %d after drain (leaked slot)", got)
	}
	// Queue bound held: depth never exceeded the configured maxima.
	if d := maxDepth.Load(); d > 8+4 {
		t.Errorf("observed queue depth %d exceeds configured bound 12", d)
	}
	// The registry view reconciles too.
	snap := reg.Snapshot()
	for _, class := range []string{"nav", "mining"} {
		o := snap.Counters[fmt.Sprintf("admission_%s_offered", class)]
		a := snap.Counters[fmt.Sprintf("admission_%s_admitted", class)]
		s := snap.Counters[fmt.Sprintf("admission_%s_shed", class)]
		if o != a+s {
			t.Errorf("metrics %s: offered %d != admitted %d + shed %d", class, o, a, s)
		}
	}
}

// TestAdmissionRaceWithCancel pins the admit/cancel race: when release
// hands a slot to a waiter at the same moment the waiter's ctx fires,
// exactly one of the two outcomes happens and accounting stays exact.
func TestAdmissionRaceWithCancel(t *testing.T) {
	c := newTest(t, 1, 64, 64)
	const rounds = 300
	for i := 0; i < rounds; i++ {
		rel, err := c.Acquire(context.Background(), "nav")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		got := make(chan error, 1)
		go func() {
			r, err := c.Acquire(ctx, "nav")
			if err == nil {
				r()
			}
			got <- err
		}()
		waitForDepth(t, c, 1)
		// Release and cancel concurrently: the waiter either gets the
		// slot (err nil) or counts shed — never both, never neither.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); rel() }()
		go func() { defer wg.Done(); cancel() }()
		wg.Wait()
		<-got
	}
	st := c.Stats()["nav"]
	if st.Offered != st.Admitted+st.Shed {
		t.Fatalf("offered %d != admitted %d + shed %d", st.Offered, st.Admitted, st.Shed)
	}
	if c.Running() != 0 || c.QueueDepth() != 0 {
		t.Fatalf("leaked state: running %d, depth %d", c.Running(), c.QueueDepth())
	}
}

// TestEstServiceStableUnderExpiredDeadlineBurst is the EWMA-poisoning
// regression test: requests admitted through the free-slot fast path
// with an already-expired deadline release almost instantly, and those
// near-zero samples must NOT fold into the service-time estimate —
// before the fix, a burst like this collapsed EstimatedService toward
// zero, shrinking Retry-After hints and defeating the deadline-aware
// early shed.
func TestEstServiceStableUnderExpiredDeadlineBurst(t *testing.T) {
	const seed = 50 * time.Millisecond
	c, err := New(Config{
		MaxConcurrent: 2,
		Classes:       []ClassConfig{{Name: "nav"}},
		EstService:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		// Deadline already expired: the free-slot fast path still admits
		// (it does not consult the deadline), and the handler unwinds at
		// its first cancellation checkpoint.
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
		rel, err := c.Acquire(ctx, "nav")
		if err != nil {
			t.Fatalf("fast-path Acquire %d: %v", i, err)
		}
		rel()
		cancel()
	}
	if got := c.EstimatedService(); got != seed {
		t.Fatalf("EstimatedService = %v after expired-deadline burst, want unchanged %v", got, seed)
	}
	// Live releases must still update the estimate.
	rel, err := c.Acquire(context.Background(), "nav")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if got := c.EstimatedService(); got >= seed {
		t.Fatalf("EstimatedService = %v after a fast live release, want < %v (EWMA still adapts)", got, seed)
	}
}

// TestAdmitCancelRaceOrderings is the table-driven companion to
// TestAdmissionRaceWithCancel: it pins the keep-the-slot path (release
// hands the slot to a waiter whose ctx fires at the same moment) under
// each interleaving of release and cancel, asserting the waiter's
// outcome is exactly one of admitted/shed and accounting stays exact.
func TestAdmitCancelRaceOrderings(t *testing.T) {
	cases := []struct {
		name string
		run  func(rel, cancel func())
	}{
		// Admission lands first: the waiter may still observe ctx.Done
		// in its select and must keep the slot (w.admitted true).
		{"release-then-cancel", func(rel, cancel func()) { rel(); cancel() }},
		// Cancellation lands first, but release may still beat the
		// waiter to the lock and admit it.
		{"cancel-then-release", func(rel, cancel func()) { cancel(); rel() }},
		{"concurrent", func(rel, cancel func()) {
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); rel() }()
			go func() { defer wg.Done(); cancel() }()
			wg.Wait()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTest(t, 1, 64, 64)
			kept := 0
			for i := 0; i < 200; i++ {
				rel := fillSlots(t, c, "nav", 1)[0]
				ctx, cancel := context.WithCancel(context.Background())
				type outcome struct {
					err     error
					ctxDead bool
				}
				got := make(chan outcome, 1)
				go func() {
					r, err := c.Acquire(ctx, "nav")
					dead := ctx.Err() != nil
					if err == nil {
						r()
					}
					got <- outcome{err, dead}
				}()
				waitForDepth(t, c, 1)
				tc.run(rel, cancel)
				o := <-got
				if o.err == nil && o.ctxDead {
					kept++ // admitted despite a dead ctx: the keep-the-slot path
				}
				if o.err != nil {
					var shed *ShedError
					if !errors.As(o.err, &shed) || shed.Reason != ReasonCanceled {
						t.Fatalf("iteration %d: unexpected error %v", i, o.err)
					}
				}
				cancel()
				if c.Running() != 0 || c.QueueDepth() != 0 {
					t.Fatalf("iteration %d: leaked state: running %d, depth %d",
						i, c.Running(), c.QueueDepth())
				}
			}
			t.Logf("kept-the-slot admissions: %d/200", kept)
			st := c.Stats()["nav"]
			if st.Offered != st.Admitted+st.Shed {
				t.Fatalf("offered %d != admitted %d + shed %d", st.Offered, st.Admitted, st.Shed)
			}
		})
	}
}
