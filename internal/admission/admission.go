// Package admission is the serving tier's overload backstop: a
// bounded-queue admission controller in front of the query engine.
//
// Closed-loop benchmarks (N goroutines in lockstep) mathematically
// cannot exhibit queueing collapse — each client waits for its previous
// request, so offered load self-limits at capacity. Real traffic is
// open-loop: arrivals do not slow down because the server is slow, so
// past the capacity knee an unprotected server accumulates unbounded
// queues and every request's latency diverges. The standard cure, which
// this package implements, is to bound the queues and shed the excess:
//
//   - A fixed number of execution slots (MaxConcurrent) bounds the work
//     actually in flight.
//   - Each request class has its own bounded FIFO wait queue; a request
//     arriving to a full queue is rejected immediately (a fast 429-style
//     reject with a Retry-After hint) instead of waiting forever.
//   - Classes are prioritized: when a slot frees, the highest-priority
//     non-empty queue is served first (navigation lookups ahead of
//     analysis/mining queries), FIFO within a class.
//   - Deadline awareness: a request whose context deadline would expire
//     before its estimated queue wait is shed on arrival rather than
//     admitted to miss its deadline while holding a queue slot.
//   - Cancellation while queued (client gave up, deadline fired) removes
//     the waiter and counts it as shed.
//
// Accounting invariant, asserted by the chaos tests and exported via
// RegisterMetrics: for every class, offered == admitted + shed once the
// system drains, and queue depth never exceeds the configured bound.
package admission

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"snode/internal/metrics"
	"snode/internal/trace"
)

// Shed reasons, carried on ShedError for metrics and response bodies.
const (
	ReasonQueueFull = "queue_full" // class queue at capacity
	ReasonDeadline  = "deadline"   // ctx deadline sooner than estimated wait
	ReasonCanceled  = "canceled"   // ctx done while queued
)

// ShedError is the fast-reject outcome of Acquire: the request was not
// admitted and should be answered with a 429-style response carrying
// the RetryAfter hint.
type ShedError struct {
	Class      string
	Reason     string
	RetryAfter time.Duration
	err        error // underlying ctx error for ReasonCanceled
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: %s request shed (%s), retry after %v",
		e.Class, e.Reason, e.RetryAfter)
}

// Unwrap exposes the context error behind a ReasonCanceled shed, so
// errors.Is(err, context.DeadlineExceeded) works on shed results.
func (e *ShedError) Unwrap() error { return e.err }

// ClassConfig declares one request class.
type ClassConfig struct {
	// Name identifies the class ("nav", "mining").
	Name string
	// MaxQueue bounds the class's wait queue (<= 0 selects 64). A
	// request arriving with MaxQueue waiters already queued is shed.
	MaxQueue int
}

// Config sizes a Controller.
type Config struct {
	// MaxConcurrent is the number of execution slots (<= 0 selects
	// GOMAXPROCS) — requests admitted and not yet released.
	MaxConcurrent int
	// Classes lists the request classes in priority order, highest
	// first. Required (at least one).
	Classes []ClassConfig
	// EstService seeds the service-time estimate behind Retry-After and
	// the deadline-aware early shed before any request has completed
	// (default 50ms). The estimate is updated as an EWMA of observed
	// admit-to-release times.
	EstService time.Duration
	// MinRetryAfter / MaxRetryAfter clamp the Retry-After hint
	// (defaults 100ms and 30s).
	MinRetryAfter time.Duration
	MaxRetryAfter time.Duration
}

// waiter is one queued request.
type waiter struct {
	ready    chan struct{} // closed on admission
	admitted bool          // written under Controller.mu
}

// classState is one class's queue and accounting. Counters are plain
// int64s written under Controller.mu; RegisterMetrics exports them via
// snapshot funcs so a scrape always reconciles with Stats.
type classState struct {
	name     string
	maxQueue int
	waiters  []*waiter

	offered  int64
	admitted int64
	shed     int64
	shedBy   map[string]int64 // reason → count

	waitHist *metrics.Histogram // nil until RegisterMetrics
}

// Controller is the admission gate. Safe for concurrent use.
type Controller struct {
	mu      sync.Mutex
	max     int
	running int
	classes []*classState
	byName  map[string]*classState

	estService   time.Duration // EWMA of admit→release times
	minRA, maxRA time.Duration
}

// New builds a controller. Classes are prioritized in the order given.
func New(cfg Config) (*Controller, error) {
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("admission: no classes configured")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.EstService <= 0 {
		cfg.EstService = 50 * time.Millisecond
	}
	if cfg.MinRetryAfter <= 0 {
		cfg.MinRetryAfter = 100 * time.Millisecond
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 30 * time.Second
	}
	c := &Controller{
		max:        cfg.MaxConcurrent,
		byName:     map[string]*classState{},
		estService: cfg.EstService,
		minRA:      cfg.MinRetryAfter,
		maxRA:      cfg.MaxRetryAfter,
	}
	for _, cc := range cfg.Classes {
		if cc.Name == "" {
			return nil, fmt.Errorf("admission: class with empty name")
		}
		if _, dup := c.byName[cc.Name]; dup {
			return nil, fmt.Errorf("admission: duplicate class %q", cc.Name)
		}
		if cc.MaxQueue <= 0 {
			cc.MaxQueue = 64
		}
		cs := &classState{name: cc.Name, maxQueue: cc.MaxQueue, shedBy: map[string]int64{}}
		c.classes = append(c.classes, cs)
		c.byName[cc.Name] = cs
	}
	return c, nil
}

// MaxConcurrent reports the slot count.
func (c *Controller) MaxConcurrent() int { return c.max }

// Acquire admits the request into an execution slot, waiting in the
// class's bounded queue if every slot is busy. On admission it returns
// a release function the caller MUST invoke exactly once when the
// request finishes. On rejection it returns a *ShedError (queue full,
// deadline unmeetable, or ctx done while queued) — the caller should
// answer with a fast reject carrying the error's RetryAfter.
//
// When ctx carries an execution trace and the request had to queue, the
// wait is recorded as an "admission.wait" span on the trace.
func (c *Controller) Acquire(ctx context.Context, class string) (release func(), err error) {
	cs, ok := c.byName[class]
	if !ok {
		return nil, fmt.Errorf("admission: unknown class %q", class)
	}
	c.mu.Lock()
	cs.offered++
	if c.running < c.max {
		// Free slot: admit immediately. Queues are empty whenever a slot
		// is free (release always hands a freed slot to a waiter), so
		// this cannot overtake queued requests.
		c.running++
		cs.admitted++
		c.mu.Unlock()
		return c.releaseFunc(ctx, time.Now()), nil
	}
	if dl, hasDL := ctx.Deadline(); hasDL {
		if wait := c.estWaitLocked(cs); time.Now().Add(wait).After(dl) {
			// The request would still be queued (or barely admitted) when
			// its deadline fires; shed now so the client retries instead
			// of burning a queue slot to time out.
			ra := c.retryAfterLocked()
			cs.shed++
			cs.shedBy[ReasonDeadline]++
			c.mu.Unlock()
			return nil, &ShedError{Class: class, Reason: ReasonDeadline, RetryAfter: ra}
		}
	}
	if len(cs.waiters) >= cs.maxQueue {
		ra := c.retryAfterLocked()
		cs.shed++
		cs.shedBy[ReasonQueueFull]++
		c.mu.Unlock()
		return nil, &ShedError{Class: class, Reason: ReasonQueueFull, RetryAfter: ra}
	}
	w := &waiter{ready: make(chan struct{})}
	cs.waiters = append(cs.waiters, w)
	c.mu.Unlock()

	enqueued := time.Now()
	select {
	case <-w.ready:
	case <-ctx.Done():
		c.mu.Lock()
		if !w.admitted {
			for i, x := range cs.waiters {
				if x == w {
					cs.waiters = append(cs.waiters[:i], cs.waiters[i+1:]...)
					break
				}
			}
			ra := c.retryAfterLocked()
			cs.shed++
			cs.shedBy[ReasonCanceled]++
			c.mu.Unlock()
			return nil, &ShedError{Class: class, Reason: ReasonCanceled, RetryAfter: ra, err: ctx.Err()}
		}
		// Admission raced the cancellation: the slot is ours. Keep it —
		// the caller observes ctx itself and finishes fast; counting it
		// admitted keeps offered == admitted + shed exact.
		c.mu.Unlock()
	}
	wait := time.Since(enqueued)
	if h := cs.waitHist; h != nil {
		h.ObserveDuration(wait)
	}
	if trace.Active(ctx) {
		trace.RecordSpan(ctx, "admission.wait", enqueued, wait,
			trace.Attr{Key: "queued_ns", Val: int64(wait)})
	}
	return c.releaseFunc(ctx, time.Now()), nil
}

// releaseFunc builds the once-only release closure for an admitted
// request: it folds the observed service time into the EWMA, frees the
// slot, and hands it to the highest-priority waiter, if any.
//
// Releases whose context is already dead do not feed the EWMA: a
// request admitted with a nearly-expired deadline unwinds at its first
// cancellation checkpoint, and folding that near-zero "service time"
// into estService would shrink the Retry-After hints and defeat the
// deadline-aware early shed (every doomed admission would make the
// controller more optimistic, admitting more doomed requests).
func (c *Controller) releaseFunc(ctx context.Context, admitted time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			observed := time.Since(admitted)
			ctxDead := ctx.Err() != nil
			c.mu.Lock()
			// EWMA with alpha 1/4: stable against one outlier, adapts in
			// a few requests when the workload shifts. Ctx-dead releases
			// measure how fast the request unwound, not how long service
			// takes — skip them.
			if !ctxDead {
				c.estService = (3*c.estService + observed) / 4
			}
			c.running--
			for _, cs := range c.classes {
				if len(cs.waiters) > 0 {
					w := cs.waiters[0]
					cs.waiters = cs.waiters[1:]
					w.admitted = true
					cs.admitted++
					c.running++
					close(w.ready)
					break
				}
			}
			c.mu.Unlock()
		})
	}
}

// estWaitLocked estimates how long a new arrival of class cs would
// queue: everything at its priority or higher must drain ahead of it
// through max slots, each occupied ~estService. Caller holds c.mu.
func (c *Controller) estWaitLocked(cs *classState) time.Duration {
	ahead := 0
	for _, x := range c.classes {
		ahead += len(x.waiters)
		if x == cs {
			break
		}
	}
	turns := float64(ahead+1) / float64(c.max)
	return time.Duration(math.Ceil(turns * float64(c.estService)))
}

// retryAfterLocked computes the Retry-After hint from the current
// backlog: (queued + running) requests drain through max slots at
// ~estService each. Clamped to [MinRetryAfter, MaxRetryAfter]. Caller
// holds c.mu.
func (c *Controller) retryAfterLocked() time.Duration {
	backlog := c.running
	for _, cs := range c.classes {
		backlog += len(cs.waiters)
	}
	ra := time.Duration(float64(backlog) / float64(c.max) * float64(c.estService))
	if ra < c.minRA {
		ra = c.minRA
	}
	if ra > c.maxRA {
		ra = c.maxRA
	}
	return ra
}

// ClassStats is one class's accounting snapshot.
type ClassStats struct {
	Offered  int64
	Admitted int64
	Shed     int64
	// ShedBy splits Shed by reason (queue_full, deadline, canceled).
	ShedBy map[string]int64
	// QueueDepth is the instantaneous number of queued waiters.
	QueueDepth int
}

// Stats snapshots every class's counters. offered == admitted + shed +
// (waiters still queued) at any instant; once drained, offered ==
// admitted + shed exactly.
func (c *Controller) Stats() map[string]ClassStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]ClassStats, len(c.classes))
	for _, cs := range c.classes {
		by := make(map[string]int64, len(cs.shedBy))
		for k, v := range cs.shedBy {
			by[k] = v
		}
		out[cs.name] = ClassStats{
			Offered:    cs.offered,
			Admitted:   cs.admitted,
			Shed:       cs.shed,
			ShedBy:     by,
			QueueDepth: len(cs.waiters),
		}
	}
	return out
}

// Running reports the number of admitted, unreleased requests.
func (c *Controller) Running() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.running
}

// QueueDepth reports the total number of queued waiters across classes.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, cs := range c.classes {
		n += len(cs.waiters)
	}
	return n
}

// EstimatedService reports the current EWMA service-time estimate.
func (c *Controller) EstimatedService() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.estService
}

// RegisterMetrics exposes the controller on a registry under the given
// prefix: per class, <prefix>_<class>_offered / _admitted / _shed
// counters, a _queue_depth gauge, and a _wait_seconds histogram of
// queue waits; globally, <prefix>_running and <prefix>_queue_depth
// gauges. The counters read the same mutex-guarded state as Stats, so
// a scrape always satisfies offered >= admitted + shed, with equality
// once the queues drain.
func (c *Controller) RegisterMetrics(reg *metrics.Registry, prefix string) {
	for _, cs := range c.classes {
		cs := cs
		base := prefix + "_" + cs.name
		reg.CounterFunc(base+"_offered", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return cs.offered
		})
		reg.CounterFunc(base+"_admitted", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return cs.admitted
		})
		reg.CounterFunc(base+"_shed", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return cs.shed
		})
		reg.GaugeFunc(base+"_queue_depth", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(cs.waiters))
		})
		c.mu.Lock()
		cs.waitHist = reg.Histogram(base+"_wait_seconds", nil)
		c.mu.Unlock()
	}
	reg.GaugeFunc(prefix+"_running", func() int64 { return int64(c.Running()) })
	reg.GaugeFunc(prefix+"_queue_depth", func() int64 { return int64(c.QueueDepth()) })
}
