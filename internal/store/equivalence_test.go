package store_test

// Cross-representation equivalence: every scheme (S-Node, plain
// Huffman, Link3, relational, uncompressed files) must return exactly
// the adjacency lists of the source graph, with and without filters.
// This is the repository's central correctness invariant — Figure 11's
// comparison is only meaningful if all five schemes answer identically.

import (
	"os"
	"sort"
	"testing"

	"snode/internal/dbstore"
	"snode/internal/flatfile"
	"snode/internal/huffgraph"
	"snode/internal/iosim"
	"snode/internal/link3"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

var (
	eqLayout []webgraph.PageID
	eqCorpus *webgraph.Corpus
	eqStores []store.LinkStore
	eqDirs   map[string]string
)

func buildAll(t testing.TB) (*webgraph.Corpus, []store.LinkStore) {
	t.Helper()
	if eqCorpus != nil {
		return eqCorpus, eqStores
	}
	crawl, err := synth.Generate(synth.DefaultConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	c := crawl.Corpus
	model := iosim.Model2002()
	budget := int64(8 << 20)

	snDir, err := os.MkdirTemp("", "eq-snode-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snode.Build(c, snode.DefaultConfig(), snDir); err != nil {
		t.Fatalf("snode build: %v", err)
	}
	sn, err := snode.Open(snDir, budget, model)
	if err != nil {
		t.Fatal(err)
	}

	hf, err := huffgraph.Build(c)
	if err != nil {
		t.Fatal(err)
	}

	ffDir, err := os.MkdirTemp("", "eq-ff-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := flatfile.Build(c, ffDir, crawl.Order); err != nil {
		t.Fatal(err)
	}
	ff, err := flatfile.Open(c, ffDir, crawl.Order, budget, model)
	if err != nil {
		t.Fatal(err)
	}

	l3Dir, err := os.MkdirTemp("", "eq-l3-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := link3.Build(c, l3Dir); err != nil {
		t.Fatal(err)
	}
	l3, err := link3.Open(c, l3Dir, budget, model)
	if err != nil {
		t.Fatal(err)
	}

	dbDir, err := os.MkdirTemp("", "eq-db-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := dbstore.Build(c, dbDir, crawl.Order); err != nil {
		t.Fatal(err)
	}
	db, err := dbstore.Open(c, dbDir, budget, model)
	if err != nil {
		t.Fatal(err)
	}

	eqLayout = crawl.Order
	eqCorpus = c
	eqStores = []store.LinkStore{sn, hf, ff, l3, db}
	eqDirs = map[string]string{"snode": snDir, "files": ffDir, "link3": l3Dir, "db": dbDir}
	return eqCorpus, eqStores
}

func sorted(xs []webgraph.PageID) []webgraph.PageID {
	out := append([]webgraph.PageID(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestAllStoresMatchSourceGraph(t *testing.T) {
	c, stores := buildAll(t)
	var buf []webgraph.PageID
	for _, s := range stores {
		if s.NumPages() != c.Graph.NumPages() {
			t.Fatalf("%s: NumPages %d, want %d", s.Name(), s.NumPages(), c.Graph.NumPages())
		}
		for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
			var err error
			buf, err = s.Out(p, buf[:0])
			if err != nil {
				t.Fatalf("%s: Out(%d): %v", s.Name(), p, err)
			}
			got := sorted(buf)
			want := c.Graph.Out(p)
			if len(got) != len(want) {
				t.Fatalf("%s: page %d has %d targets, want %d", s.Name(), p, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: page %d target %d: %d != %d", s.Name(), p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAllStoresAgreeOnFilters(t *testing.T) {
	c, stores := buildAll(t)
	filters := []*store.Filter{
		nil,
		{Domains: map[string]bool{"stanford.edu": true}},
		{Domains: map[string]bool{"mit.edu": true, "berkeley.edu": true}},
		{Pages: map[webgraph.PageID]bool{10: true, 500: true, 2500: true}},
		{Domains: map[string]bool{"dilbert.com": true},
			Pages: map[webgraph.PageID]bool{42: true}},
	}
	var bufs [2][]webgraph.PageID
	ref := stores[0]
	for _, f := range filters {
		for p := int32(0); int(p) < c.Graph.NumPages(); p += 53 {
			var err error
			bufs[0], err = ref.OutFiltered(p, f, bufs[0][:0])
			if err != nil {
				t.Fatal(err)
			}
			want := sorted(bufs[0])
			for _, s := range stores[1:] {
				bufs[1], err = s.OutFiltered(p, f, bufs[1][:0])
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				got := sorted(bufs[1])
				if len(got) != len(want) {
					t.Fatalf("%s vs %s: page %d filter %+v: %d vs %d targets",
						s.Name(), ref.Name(), p, f, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: page %d filter mismatch", s.Name(), p)
					}
				}
			}
		}
	}
}

func TestCompressionOrdering(t *testing.T) {
	// The Table 1 shape: snode <= link3 << huffman-ish... at minimum,
	// the compressed schemes must beat the uncompressed file layout,
	// and snode must beat plain Huffman.
	c, stores := buildAll(t)
	edges := c.Graph.NumEdges()
	bpe := map[string]float64{}
	for _, s := range stores {
		sized, ok := s.(store.Sized)
		if !ok {
			t.Fatalf("%s does not report size", s.Name())
		}
		if sized.SizeBytes() <= 0 {
			t.Fatalf("%s: non-positive size", s.Name())
		}
		bpe[s.Name()] = store.BitsPerEdge(sized, edges)
	}
	t.Logf("bits/edge: %v", bpe)
	if bpe["snode"] >= bpe["huffman"] {
		t.Fatalf("snode (%.2f) not smaller than huffman (%.2f)", bpe["snode"], bpe["huffman"])
	}
	if bpe["link3"] >= bpe["files"] {
		t.Fatalf("link3 (%.2f) not smaller than files (%.2f)", bpe["link3"], bpe["files"])
	}
	if bpe["snode"] >= bpe["files"] {
		t.Fatalf("snode (%.2f) not smaller than files (%.2f)", bpe["snode"], bpe["files"])
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	// Fresh instances so caches are cold; the shared instances used by
	// the other tests may already hold the whole dataset.
	c, _ := buildAll(t)
	model := iosim.Model2002()
	budget := int64(64 << 10)
	sn, err := snode.Open(eqDirs["snode"], budget, model)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	ff, err := flatfile.Open(c, eqDirs["files"], eqLayout, budget, model)
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Close()
	l3, err := link3.Open(c, eqDirs["link3"], budget, model)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	db, err := dbstore.Open(c, eqDirs["db"], budget, model)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var buf []webgraph.PageID
	for _, s := range []store.LinkStore{sn, ff, l3, db} {
		s.ResetStats()
		for p := int32(0); p < 200; p++ {
			var err error
			buf, err = s.Out(p, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		if st.IO.Reads == 0 && st.GraphsLoaded == 0 {
			t.Errorf("%s: no observable I/O after cold reads", s.Name())
		}
		if st.IO.ModeledTime(model) <= 0 {
			t.Errorf("%s: zero modeled time", s.Name())
		}
		s.ResetStats()
		if st2 := s.Stats(); st2.IO.Reads != 0 {
			t.Errorf("%s: stats not reset", s.Name())
		}
	}
}

func TestFilterHelpers(t *testing.T) {
	var f *store.Filter
	if !f.Empty() {
		t.Fatal("nil filter not empty")
	}
	f = &store.Filter{}
	if !f.Empty() {
		t.Fatal("zero filter not empty")
	}
	f = &store.Filter{Domains: map[string]bool{"a.com": true}}
	if f.Empty() || !f.AcceptsDomain("a.com") || f.AcceptsDomain("b.com") {
		t.Fatal("domain filter misbehaves")
	}
	f = &store.Filter{Pages: map[webgraph.PageID]bool{3: true}}
	if !f.AcceptsPage(3) || f.AcceptsPage(4) {
		t.Fatal("page filter misbehaves")
	}
}

func TestDomainRanges(t *testing.T) {
	pages := []webgraph.PageMeta{
		{URL: "u1", Domain: "a.com"},
		{URL: "u2", Domain: "a.com"},
		{URL: "u3", Domain: "b.com"},
	}
	dr := store.NewDomainRanges(pages)
	if r := dr["a.com"]; r.Lo != 0 || r.Hi != 2 {
		t.Fatalf("a.com range %+v", r)
	}
	if r := dr["b.com"]; r.Lo != 2 || r.Hi != 3 {
		t.Fatalf("b.com range %+v", r)
	}
	if dr.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}
