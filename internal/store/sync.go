package store

import (
	"sync"

	"snode/internal/webgraph"
)

// Synchronized wraps a LinkStore with a mutex, making it safe for
// concurrent use. The underlying stores are deliberately single-
// threaded (their caches and scratch buffers are shared mutable state,
// and the paper's query plans are sequential); wrap when serving
// concurrent readers.
func Synchronized(s LinkStore) LinkStore {
	return &syncStore{inner: s}
}

type syncStore struct {
	mu    sync.Mutex
	inner LinkStore
}

func (s *syncStore) Name() string  { return s.inner.Name() }
func (s *syncStore) NumPages() int { return s.inner.NumPages() }

func (s *syncStore) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Out(p, buf)
}

func (s *syncStore) OutFiltered(p webgraph.PageID, f *Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.OutFiltered(p, f, buf)
}

func (s *syncStore) Stats() AccessStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Stats()
}

func (s *syncStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.ResetStats()
}

func (s *syncStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Close()
}

// ResetCache forwards when the inner store supports it, so a wrapped
// store still satisfies CacheResetter.
func (s *syncStore) ResetCache(budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cr, ok := s.inner.(CacheResetter); ok {
		cr.ResetCache(budget)
	}
}
