// Package store defines the access interface every Web-graph
// representation in this repository implements — the S-Node scheme and
// the four baselines (plain Huffman, Link3, relational, uncompressed
// files). The query engine runs against this interface, so Figure 11's
// comparison exercises identical navigation plans over each scheme.
package store

import (
	"context"
	"time"

	"snode/internal/iosim"
	"snode/internal/webgraph"
)

// Filter restricts which link targets a navigation step wants. Schemes
// that index their layout by domain or page grouping (S-Node) can skip
// whole graphs; flat schemes apply the filter to decoded lists. A zero
// Filter accepts everything.
type Filter struct {
	// Domains accepts targets in any of these registered domains.
	Domains map[string]bool
	// Pages accepts exactly these target pages. When both fields are
	// set a target passes if it satisfies either.
	Pages map[webgraph.PageID]bool
}

// Empty reports whether the filter accepts everything.
func (f *Filter) Empty() bool {
	return f == nil || (f.Domains == nil && f.Pages == nil)
}

// AcceptsPage applies the page-set part; domain checks need metadata
// and are done by the caller or the store.
func (f *Filter) AcceptsPage(p webgraph.PageID) bool {
	return f.Pages != nil && f.Pages[p]
}

// AcceptsDomain applies the domain part.
func (f *Filter) AcceptsDomain(d string) bool {
	return f.Domains != nil && f.Domains[d]
}

// AccessStats summarizes the I/O a store performed, for navigation-time
// accounting.
type AccessStats struct {
	IO iosim.Stats
	// GraphsLoaded counts representation-specific load units (S-Node
	// intranode/superedge graphs, Link3 blocks, DB pages, ...).
	GraphsLoaded int64
}

// ModeledTime converts the stats to simulated disk time under m.
func (s AccessStats) ModeledTime(m iosim.Model) time.Duration {
	return s.IO.ModeledTime(m)
}

// LinkStore is a queryable graph representation. Thread safety is per
// implementation: the S-Node representation is safe for concurrent use
// (its buffer manager is sharded and deduplicates concurrent decodes),
// and the parallel query engine requires that; the four baseline
// schemes remain single-threaded, like the paper's hand-crafted plans.
type LinkStore interface {
	// Name identifies the scheme ("snode", "link3", ...).
	Name() string
	// NumPages reports the number of pages represented.
	NumPages() int
	// Out appends page p's out-neighbours to buf and returns it. The
	// order is unspecified but deterministic; no duplicates.
	Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error)
	// OutFiltered appends only the out-neighbours accepted by f.
	// Schemes exploit f to avoid loading irrelevant storage.
	OutFiltered(p webgraph.PageID, f *Filter, buf []webgraph.PageID) ([]webgraph.PageID, error)
	// Stats reports cumulative access statistics since ResetStats.
	Stats() AccessStats
	// ResetStats zeroes the access statistics.
	ResetStats()
	// Close releases files and caches.
	Close() error
}

// ContextLinkStore is implemented by stores whose read path accepts a
// context.Context carrying request-scoped state — execution traces
// (internal/trace) and cancellation. The query engine routes accesses
// through it when the scheme provides it (S-Node); the flat baselines
// keep the plain path. OutFilteredCtx with a background context must
// behave exactly like OutFiltered (and, with a nil filter, like Out).
type ContextLinkStore interface {
	LinkStore
	OutFilteredCtx(ctx context.Context, p webgraph.PageID, f *Filter, buf []webgraph.PageID) ([]webgraph.PageID, error)
}

// CacheResetter is implemented by disk-backed stores whose buffer can
// be emptied and re-budgeted — the Figure 12 sweep protocol (and cold
// starts generally).
type CacheResetter interface {
	ResetCache(budget int64)
}

// Pacer is implemented by stores that can replay their modeled disk
// cost as real per-read stalls (iosim pacing). The concurrent-serving
// experiments enable it so goroutines genuinely overlap modeled I/O
// waits; scale 0 disables.
type Pacer interface {
	SetPace(scale float64)
}

// Hedger is implemented by stores that can hedge coalesced cache-miss
// waits: a request blocked behind another request's in-flight decode
// for longer than after launches its own private read+decode and takes
// whichever result lands first — the classic tail-latency cure for p99
// stragglers on the cache-miss path. 0 disables.
type Hedger interface {
	SetHedge(after time.Duration)
}

// Sized is implemented by stores that can report their total on-disk /
// in-memory representation size for the compression experiments.
type Sized interface {
	// SizeBytes is the total space of the representation, including its
	// internal indexes (page-ID and domain indexes), as in Table 1.
	SizeBytes() int64
}

// BitsPerEdge is the Table 1 metric.
func BitsPerEdge(s Sized, edges int64) float64 {
	if edges == 0 {
		return 0
	}
	return float64(s.SizeBytes()*8) / float64(edges)
}

// DomainRange is a contiguous external page-ID interval [Lo, Hi).
type DomainRange struct {
	Lo, Hi webgraph.PageID
}

// DomainRanges computes each domain's page range. The crawl generator
// assigns IDs in (domain, URL) order, so every domain is contiguous;
// this is the domain index the flat baselines keep in memory (the §4
// setup gives every scheme a domain and page-ID index).
type DomainRanges map[string]DomainRange

// NewDomainRanges builds the index from page metadata.
func NewDomainRanges(pages []webgraph.PageMeta) DomainRanges {
	out := DomainRanges{}
	for i := 0; i < len(pages); {
		j := i
		d := pages[i].Domain
		for j < len(pages) && pages[j].Domain == d {
			j++
		}
		out[d] = DomainRange{Lo: webgraph.PageID(i), Hi: webgraph.PageID(j)}
		i = j
	}
	return out
}

// SizeBytes reports the in-memory footprint of the index, for the
// Table 1 accounting.
func (dr DomainRanges) SizeBytes() int64 {
	var n int64
	for d := range dr {
		n += int64(len(d)) + 8
	}
	return n
}

// FilterAccepts applies a filter to a concrete target given the corpus
// domain ranges (used by flat schemes that decode full lists).
func FilterAccepts(f *Filter, p webgraph.PageID, dr DomainRanges, domainOf func(webgraph.PageID) string) bool {
	if f.Empty() {
		return true
	}
	if f.AcceptsPage(p) {
		return true
	}
	return f.Domains != nil && f.Domains[domainOf(p)]
}
