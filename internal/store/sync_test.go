package store_test

import (
	"sort"
	"sync"
	"testing"

	"snode/internal/store"
	"snode/internal/webgraph"
)

// TestSynchronizedConcurrentReaders hammers a wrapped store from many
// goroutines; run with -race to verify the wrapper's guarantees.
func TestSynchronizedConcurrentReaders(t *testing.T) {
	c, stores := buildAll(t)
	for _, raw := range stores {
		s := store.Synchronized(raw)
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var buf []webgraph.PageID
				for p := int32(w); int(p) < c.Graph.NumPages(); p += 8 * 7 {
					var err error
					buf, err = s.Out(p, buf[:0])
					if err != nil {
						errs <- err
						return
					}
					got := append([]webgraph.PageID(nil), buf...)
					sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
					want := c.Graph.Out(p)
					if len(got) != len(want) {
						t.Errorf("%s: page %d: %d targets, want %d",
							s.Name(), p, len(got), len(want))
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: %v", raw.Name(), err)
		}
	}
}

func TestSynchronizedForwardsCacheReset(t *testing.T) {
	_, stores := buildAll(t)
	for _, raw := range stores {
		s := store.Synchronized(raw)
		if _, ok := raw.(store.CacheResetter); ok {
			if _, ok := s.(store.CacheResetter); !ok {
				t.Fatalf("%s: wrapper lost CacheResetter", raw.Name())
			}
			s.(store.CacheResetter).ResetCache(1 << 20)
		}
		if s.Name() != raw.Name() || s.NumPages() != raw.NumPages() {
			t.Fatalf("%s: wrapper changed identity", raw.Name())
		}
	}
}
