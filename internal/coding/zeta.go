package coding

import (
	"math/bits"

	"snode/internal/bitio"
)

// Zeta codes (Boldi & Vigna, "The WebGraph Framework II"): ζ_k is tuned
// for the power-law gap distributions of Web-graph adjacency lists,
// interpolating between gamma (ζ_1) and flatter codes. The value x >= 1
// with h = floor(log2(x)/k) is written as h+1 in unary followed by
// x - 2^(hk) in minimal binary over [0, 2^((h+1)k) - 2^(hk)).
//
// The S-Node reference encoder can use ζ codes for gap values (see
// refenc.Options.GapCode) — a post-paper refinement the ablation bench
// quantifies against the paper's gamma coding.

// WriteZeta appends the ζ_k code of v (v >= 1, k >= 1).
func WriteZeta(w *bitio.Writer, v uint64, k uint) {
	if v == 0 {
		panic("coding: zeta code requires v >= 1")
	}
	if k == 0 {
		panic("coding: zeta requires k >= 1")
	}
	h := uint(bits.Len64(v)-1) / k
	w.WriteUnary(uint64(h))
	lo := uint64(1) << (h * k)
	hi := uint64(1) << ((h + 1) * k)
	WriteMinimalBinary(w, v-lo, hi-lo)
}

// ReadZeta decodes a ζ_k code.
func ReadZeta(r *bitio.Reader, k uint) (uint64, error) {
	if k == 0 {
		return 0, ErrBadCode
	}
	h, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if uint(h+1)*uint(k) > 63 {
		return 0, ErrBadCode
	}
	lo := uint64(1) << (uint(h) * k)
	hi := uint64(1) << (uint(h+1) * k)
	off, err := ReadMinimalBinary(r, hi-lo)
	if err != nil {
		return 0, err
	}
	return lo + off, nil
}

// ZetaLen reports the bit length of the ζ_k code of v (v >= 1).
func ZetaLen(v uint64, k uint) int {
	h := uint(bits.Len64(v)-1) / k
	lo := uint64(1) << (h * k)
	hi := uint64(1) << ((h + 1) * k)
	return int(h) + 1 + MinimalBinaryLen(v-lo, hi-lo)
}
