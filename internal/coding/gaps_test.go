package coding

import (
	"errors"
	"testing"

	"snode/internal/bitio"
)

// A gamma gap of 2^63 or more makes int64(d) negative, so a naive
// nv >= bound check passes and int32 truncation emits an in-range-looking
// ID (e.g. gap 2^63+5 under bound 1 used to decode to [0 5]). The fused
// bounds check must reject such gaps with ErrBadCode.
func TestReadBoundedGapListRejectsOverflowGap(t *testing.T) {
	for _, gap := range []uint64{1 << 63, 1<<63 + 5, 1<<64 - 1} {
		w := bitio.NewWriter(0)
		WriteMinimalBinary(w, 0, 1)
		WriteGamma(w, gap)
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		got, err := ReadBoundedGapList(r, 2, 1, nil)
		if err == nil {
			t.Fatalf("gap %d under bound 1 accepted: %v", gap, got)
		}
		if !errors.Is(err, ErrBadCode) {
			t.Fatalf("gap %d: got %v, want ErrBadCode", gap, err)
		}
	}
}
