package coding

import (
	"math/rand"
	"testing"

	"snode/internal/bitio"
)

func TestHuffmanRoundTripSmall(t *testing.T) {
	freqs := []int64{50, 30, 10, 5, 3, 2}
	h, err := NewHuffman(freqs)
	if err != nil {
		t.Fatal(err)
	}
	msg := []int32{0, 1, 2, 3, 4, 5, 0, 0, 1, 5, 4}
	w := bitio.NewWriter(0)
	for _, s := range msg {
		h.Encode(w, s)
	}
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	for i, want := range msg {
		got, err := h.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d, want %d", i, got, want)
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	h, err := NewHuffman([]int64{42})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	h.Encode(w, 0)
	h.Encode(w, 0)
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	for i := 0; i < 2; i++ {
		s, err := h.Decode(r)
		if err != nil || s != 0 {
			t.Fatalf("decode %d: %d, %v", i, s, err)
		}
	}
}

func TestHuffmanEmptyAlphabet(t *testing.T) {
	if _, err := NewHuffman(nil); err != ErrHuffmanEmpty {
		t.Fatalf("got %v, want ErrHuffmanEmpty", err)
	}
}

func TestHuffmanNegativeFrequency(t *testing.T) {
	if _, err := NewHuffman([]int64{1, -2}); err == nil {
		t.Fatal("negative frequency accepted")
	}
}

func TestHuffmanZeroFrequenciesGetCodes(t *testing.T) {
	h, err := NewHuffman([]int64{100, 0, 0, 50})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	for s := int32(0); s < 4; s++ {
		h.Encode(w, s)
	}
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	for s := int32(0); s < 4; s++ {
		got, err := h.Decode(r)
		if err != nil || got != s {
			t.Fatalf("symbol %d: got %d, %v", s, got, err)
		}
	}
}

func TestHuffmanHighFrequencyGetsShortCode(t *testing.T) {
	// The paper assigns short codes to high in-degree pages; verify the
	// most frequent symbol's code is no longer than any other.
	freqs := []int64{1000, 3, 2, 1, 1, 1, 1, 1}
	h, err := NewHuffman(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(1); s < int32(len(freqs)); s++ {
		if h.CodeLen(0) > h.CodeLen(s) {
			t.Fatalf("frequent symbol code len %d > symbol %d len %d",
				h.CodeLen(0), s, h.CodeLen(s))
		}
	}
}

func TestHuffmanPrefixFree(t *testing.T) {
	freqs := make([]int64, 40)
	rng := rand.New(rand.NewSource(7))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(1000))
	}
	h, err := NewHuffman(freqs)
	if err != nil {
		t.Fatal(err)
	}
	// Collect (code, len) pairs and check no code is a prefix of another.
	type cw struct {
		code uint64
		len  int
	}
	var codes []cw
	for s := int32(0); s < int32(len(freqs)); s++ {
		w := bitio.NewWriter(0)
		h.Encode(w, s)
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		c, _ := r.ReadBits(uint(h.CodeLen(s)))
		codes = append(codes, cw{c, h.CodeLen(s)})
	}
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			a, b := codes[i], codes[j]
			if a.len > b.len {
				continue
			}
			if b.code>>(uint(b.len-a.len)) == a.code {
				t.Fatalf("code %d is a prefix of code %d", i, j)
			}
		}
	}
}

func TestHuffmanKraftEquality(t *testing.T) {
	// A full Huffman tree satisfies the Kraft inequality with equality.
	freqs := []int64{7, 1, 3, 9, 2, 2, 4, 11, 5}
	h, err := NewHuffman(freqs)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for s := int32(0); s < int32(len(freqs)); s++ {
		sum += 1.0 / float64(uint64(1)<<uint(h.CodeLen(s)))
	}
	if sum < 0.9999 || sum > 1.0001 {
		t.Fatalf("Kraft sum = %f, want 1", sum)
	}
}

func TestHuffmanOptimalVsFixedWidth(t *testing.T) {
	// For a skewed distribution, Huffman must beat fixed-width coding.
	freqs := []int64{10000, 500, 100, 50, 10, 5, 2, 1}
	h, err := NewHuffman(freqs)
	if err != nil {
		t.Fatal(err)
	}
	total := h.TotalBits(freqs)
	var nsyms int64
	for _, f := range freqs {
		nsyms += f
	}
	fixed := nsyms * 3 // 8 symbols → 3 bits each
	if total >= fixed {
		t.Fatalf("huffman %d bits >= fixed-width %d bits", total, fixed)
	}
}

func TestHuffmanLargeAlphabetRoundTrip(t *testing.T) {
	const n = 5000
	rng := rand.New(rand.NewSource(99))
	freqs := make([]int64, n)
	for i := range freqs {
		// Power-law-ish frequencies like web in-degrees.
		freqs[i] = int64(1 + rng.Intn(3)*rng.Intn(100)*rng.Intn(100))
	}
	h, err := NewHuffman(freqs)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]int32, 2000)
	for i := range msg {
		msg[i] = int32(rng.Intn(n))
	}
	w := bitio.NewWriter(0)
	for _, s := range msg {
		h.Encode(w, s)
	}
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	for i, want := range msg {
		got, err := h.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d, want %d", i, got, want)
		}
	}
}

func TestHuffmanTotalBits(t *testing.T) {
	freqs := []int64{5, 5, 5, 5}
	h, err := NewHuffman(freqs)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform 4-symbol alphabet: all codes are 2 bits.
	if got := h.TotalBits(freqs); got != 40 {
		t.Fatalf("TotalBits = %d, want 40", got)
	}
}

func BenchmarkHuffmanDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 14
	freqs := make([]int64, n)
	for i := range freqs {
		freqs[i] = int64(1 + rng.Intn(1000))
	}
	h, err := NewHuffman(freqs)
	if err != nil {
		b.Fatal(err)
	}
	w := bitio.NewWriter(0)
	const msgLen = 1 << 12
	for i := 0; i < msgLen; i++ {
		h.Encode(w, int32(rng.Intn(n)))
	}
	buf := w.Bytes()
	nBits := w.BitLen()
	r := bitio.NewReader(buf, nBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 64 {
			r.Reset(buf, nBits)
		}
		if _, err := h.Decode(r); err != nil {
			b.Fatal(err)
		}
	}
}
