package coding

import (
	"snode/internal/bitio"
)

// WriteGapList encodes a strictly increasing list of non-negative int32
// IDs as a gamma-coded first value (shifted by one) followed by
// gamma-coded successive differences. The length is NOT encoded; callers
// encode it separately (typically with WriteGamma0) because many formats
// already know the length from other fields.
func WriteGapList(w *bitio.Writer, ids []int32) {
	if len(ids) == 0 {
		return
	}
	WriteGamma(w, uint64(ids[0])+1)
	for i := 1; i < len(ids); i++ {
		d := ids[i] - ids[i-1]
		if d <= 0 {
			panic("coding: gap list must be strictly increasing")
		}
		WriteGamma(w, uint64(d))
	}
}

// ReadGapList decodes n IDs written by WriteGapList, appending them to
// dst and returning the extended slice.
func ReadGapList(r *bitio.Reader, n int, dst []int32) ([]int32, error) {
	if n == 0 {
		return dst, nil
	}
	v, err := ReadGamma(r)
	if err != nil {
		return dst, err
	}
	cur := int32(v - 1)
	dst = append(dst, cur)
	for i := 1; i < n; i++ {
		d, err := ReadGamma(r)
		if err != nil {
			return dst, err
		}
		cur += int32(d)
		dst = append(dst, cur)
	}
	return dst, nil
}

// GapListLen reports the encoded bit length of ids under WriteGapList.
func GapListLen(ids []int32) int {
	if len(ids) == 0 {
		return 0
	}
	n := GammaLen(uint64(ids[0]) + 1)
	for i := 1; i < len(ids); i++ {
		n += GammaLen(uint64(ids[i] - ids[i-1]))
	}
	return n
}

// WriteBoundedGapList encodes a strictly increasing list whose values
// lie in [0, bound): the first value in minimal binary, then gamma
// gaps. Cheaper than WriteGapList for small known ID spaces.
func WriteBoundedGapList(w *bitio.Writer, ids []int32, bound uint64) {
	if len(ids) == 0 {
		return
	}
	WriteMinimalBinary(w, uint64(ids[0]), bound)
	for i := 1; i < len(ids); i++ {
		d := ids[i] - ids[i-1]
		if d <= 0 {
			panic("coding: gap list must be strictly increasing")
		}
		WriteGamma(w, uint64(d))
	}
}

// ReadBoundedGapList decodes n IDs written by WriteBoundedGapList. Every
// decoded value is validated against [0, bound) as it is produced — the
// minimal binary first value cannot escape, but corrupt gamma gaps can
// push the running sum past the bound, and the fused check spares
// callers a second pass over the decoded list.
func ReadBoundedGapList(r *bitio.Reader, n int, bound uint64, dst []int32) ([]int32, error) {
	if n == 0 {
		return dst, nil
	}
	v, err := ReadMinimalBinary(r, bound)
	if err != nil {
		return dst, err
	}
	cur := int32(v)
	dst = append(dst, cur)
	for i := 1; i < n; i++ {
		d, err := ReadGamma(r)
		if err != nil {
			return dst, err
		}
		// d spans the full uint64 range, so int64(d) can be negative or
		// wrap the sum past MaxInt64 (which lands negative, since cur is
		// non-negative); nv < 0 || nv >= bound rejects every corrupt gap.
		nv := int64(cur) + int64(d)
		if nv < 0 || nv >= int64(bound) {
			return dst, ErrBadCode
		}
		cur = int32(nv)
		dst = append(dst, cur)
	}
	return dst, nil
}

// WriteRLEBits encodes a bit vector as its first bit followed by
// gamma-coded run lengths of alternating bit values. The number of bits
// is not stored; decoders pass it to ReadRLEBits. Empty vectors write
// nothing.
func WriteRLEBits(w *bitio.Writer, bitVec []bool) {
	if len(bitVec) == 0 {
		return
	}
	w.WriteBool(bitVec[0])
	run := uint64(1)
	for i := 1; i < len(bitVec); i++ {
		if bitVec[i] == bitVec[i-1] {
			run++
			continue
		}
		WriteGamma(w, run)
		run = 1
	}
	WriteGamma(w, run)
}

// ReadRLEBits decodes n bits written by WriteRLEBits into dst (which is
// truncated and reused if large enough).
func ReadRLEBits(r *bitio.Reader, n int, dst []bool) ([]bool, error) {
	dst = dst[:0]
	if n == 0 {
		return dst, nil
	}
	cur, err := r.ReadBool()
	if err != nil {
		return dst, err
	}
	for len(dst) < n {
		run, err := ReadGamma(r)
		if err != nil {
			return dst, err
		}
		if run > uint64(n-len(dst)) {
			return dst, ErrBadCode
		}
		for j := uint64(0); j < run; j++ {
			dst = append(dst, cur)
		}
		cur = !cur
	}
	return dst, nil
}

// RLEBitsLen reports the encoded bit length of bitVec under
// WriteRLEBits.
func RLEBitsLen(bitVec []bool) int {
	if len(bitVec) == 0 {
		return 0
	}
	n := 1
	run := uint64(1)
	for i := 1; i < len(bitVec); i++ {
		if bitVec[i] == bitVec[i-1] {
			run++
			continue
		}
		n += GammaLen(run)
		run = 1
	}
	n += GammaLen(run)
	return n
}
