package coding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snode/internal/bitio"
)

func TestGammaRoundTrip(t *testing.T) {
	vals := []uint64{1, 2, 3, 4, 7, 8, 15, 16, 255, 256, 1 << 20, 1<<62 + 12345}
	w := bitio.NewWriter(0)
	for _, v := range vals {
		WriteGamma(w, v)
	}
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	for i, want := range vals {
		got, err := ReadGamma(r)
		if err != nil {
			t.Fatalf("ReadGamma %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("gamma %d: got %d, want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d bits", r.Remaining())
	}
}

func TestGammaLenMatchesEncoding(t *testing.T) {
	for _, v := range []uint64{1, 2, 3, 7, 8, 100, 1023, 1024, 1 << 40} {
		w := bitio.NewWriter(0)
		WriteGamma(w, v)
		if got, want := w.BitLen(), GammaLen(v); got != want {
			t.Errorf("GammaLen(%d) = %d, encoded %d bits", v, want, got)
		}
	}
}

func TestGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteGamma(0) did not panic")
		}
	}()
	WriteGamma(bitio.NewWriter(0), 0)
}

func TestGamma0RoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 2, 100, 1 << 30}
	w := bitio.NewWriter(0)
	for _, v := range vals {
		WriteGamma0(w, v)
	}
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	for i, want := range vals {
		got, err := ReadGamma0(r)
		if err != nil || got != want {
			t.Fatalf("gamma0 %d: got %d, %v; want %d", i, got, err, want)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	vals := []uint64{1, 2, 3, 4, 7, 8, 16, 255, 256, 1 << 20, 1<<63 - 1}
	w := bitio.NewWriter(0)
	for _, v := range vals {
		WriteDelta(w, v)
	}
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	for i, want := range vals {
		got, err := ReadDelta(r)
		if err != nil {
			t.Fatalf("ReadDelta %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("delta %d: got %d, want %d", i, got, want)
		}
	}
}

func TestDeltaLenMatchesEncoding(t *testing.T) {
	for _, v := range []uint64{1, 2, 3, 7, 8, 100, 1023, 1024, 1 << 40} {
		w := bitio.NewWriter(0)
		WriteDelta(w, v)
		if got, want := w.BitLen(), DeltaLen(v); got != want {
			t.Errorf("DeltaLen(%d) = %d, encoded %d bits", v, want, got)
		}
	}
}

func TestDeltaShorterThanGammaForLargeValues(t *testing.T) {
	// Delta codes asymptotically beat gamma; check a representative value.
	v := uint64(1 << 30)
	if DeltaLen(v) >= GammaLen(v) {
		t.Fatalf("DeltaLen(%d)=%d not shorter than GammaLen=%d", v, DeltaLen(v), GammaLen(v))
	}
}

func TestMinimalBinaryRoundTrip(t *testing.T) {
	for _, bound := range []uint64{1, 2, 3, 4, 5, 7, 8, 9, 100, 1000} {
		w := bitio.NewWriter(0)
		for v := uint64(0); v < bound; v++ {
			WriteMinimalBinary(w, v, bound)
		}
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		for v := uint64(0); v < bound; v++ {
			got, err := ReadMinimalBinary(r, bound)
			if err != nil {
				t.Fatalf("bound %d v %d: %v", bound, v, err)
			}
			if got != v {
				t.Fatalf("bound %d: got %d, want %d", bound, got, v)
			}
		}
	}
}

func TestMinimalBinaryLenMatchesEncoding(t *testing.T) {
	for _, bound := range []uint64{2, 3, 5, 6, 7, 9, 100} {
		for v := uint64(0); v < bound; v++ {
			w := bitio.NewWriter(0)
			WriteMinimalBinary(w, v, bound)
			if got, want := w.BitLen(), MinimalBinaryLen(v, bound); got != want {
				t.Errorf("bound %d v %d: len %d, encoded %d", bound, v, want, got)
			}
		}
	}
}

func TestQuickGammaDelta(t *testing.T) {
	f := func(raw []uint32) bool {
		w := bitio.NewWriter(0)
		for _, v := range raw {
			WriteGamma(w, uint64(v)+1)
			WriteDelta(w, uint64(v)+1)
		}
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		for _, v := range raw {
			g, err := ReadGamma(r)
			if err != nil || g != uint64(v)+1 {
				return false
			}
			d, err := ReadDelta(r)
			if err != nil || d != uint64(v)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGapListRoundTrip(t *testing.T) {
	lists := [][]int32{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{3, 10, 11, 400, 100000},
	}
	for _, ids := range lists {
		w := bitio.NewWriter(0)
		WriteGapList(w, ids)
		if got, want := w.BitLen(), GapListLen(ids); got != want {
			t.Errorf("GapListLen(%v) = %d, encoded %d", ids, want, got)
		}
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		out, err := ReadGapList(r, len(ids), nil)
		if err != nil {
			t.Fatalf("ReadGapList(%v): %v", ids, err)
		}
		if len(out) != len(ids) {
			t.Fatalf("len %d, want %d", len(out), len(ids))
		}
		for i := range ids {
			if out[i] != ids[i] {
				t.Fatalf("list %v: element %d = %d", ids, i, out[i])
			}
		}
	}
}

func TestGapListRejectsNonIncreasing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing list did not panic")
		}
	}()
	WriteGapList(bitio.NewWriter(0), []int32{5, 5})
}

func TestQuickGapList(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a strictly increasing list from raw deltas.
		ids := make([]int32, 0, len(raw))
		cur := int32(rng.Intn(100))
		for _, d := range raw {
			ids = append(ids, cur)
			cur += int32(d%1000) + 1
		}
		w := bitio.NewWriter(0)
		WriteGapList(w, ids)
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		out, err := ReadGapList(r, len(ids), nil)
		if err != nil {
			return false
		}
		for i := range ids {
			if out[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRLEBitsRoundTrip(t *testing.T) {
	vecs := [][]bool{
		nil,
		{true},
		{false},
		{true, true, true},
		{true, false, true, false},
		{false, false, true, true, true, false},
	}
	for _, v := range vecs {
		w := bitio.NewWriter(0)
		WriteRLEBits(w, v)
		if got, want := w.BitLen(), RLEBitsLen(v); got != want {
			t.Errorf("RLEBitsLen(%v) = %d, encoded %d", v, want, got)
		}
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		out, err := ReadRLEBits(r, len(v), nil)
		if err != nil {
			t.Fatalf("ReadRLEBits(%v): %v", v, err)
		}
		for i := range v {
			if out[i] != v[i] {
				t.Fatalf("vec %v: bit %d", v, i)
			}
		}
	}
}

func TestRLEBitsCompressesLongRuns(t *testing.T) {
	v := make([]bool, 10000)
	for i := 5000; i < 10000; i++ {
		v[i] = true
	}
	if l := RLEBitsLen(v); l > 64 {
		t.Fatalf("two-run 10000-bit vector encoded in %d bits", l)
	}
}

func TestQuickRLEBits(t *testing.T) {
	f := func(raw []byte) bool {
		v := make([]bool, 0, len(raw)*3)
		for _, b := range raw {
			// Expand each byte into a short run to exercise run coding.
			val := b&1 == 1
			for j := 0; j < int(b%5)+1; j++ {
				v = append(v, val)
			}
		}
		w := bitio.NewWriter(0)
		WriteRLEBits(w, v)
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		out, err := ReadRLEBits(r, len(v), nil)
		if err != nil {
			return false
		}
		for i := range v {
			if out[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
