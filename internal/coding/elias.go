// Package coding implements the bit-level integer codes used throughout
// the S-Node representation and its baselines: Elias gamma and delta
// codes, run-length-encoded bit vectors, gap encoding of sorted ID lists
// (as in Witten, Moffat & Bell, "Managing Gigabytes"), and canonical
// Huffman coding.
package coding

import (
	"errors"
	"math/bits"

	"snode/internal/bitio"
)

// ErrBadCode is returned when a decoder encounters an invalid code word.
var ErrBadCode = errors.New("coding: invalid code word")

// WriteGamma appends the Elias gamma code of v (v >= 1): the unary length
// of v's binary representation followed by its low-order bits.
func WriteGamma(w *bitio.Writer, v uint64) {
	if v == 0 {
		panic("coding: gamma code requires v >= 1")
	}
	n := uint(bits.Len64(v)) // number of significant bits
	w.WriteUnary(uint64(n - 1))
	if n > 1 {
		w.WriteBits(v&(1<<(n-1)-1), n-1)
	}
}

// ReadGamma decodes an Elias gamma code.
func ReadGamma(r *bitio.Reader) (uint64, error) {
	nm1, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if nm1 >= 64 {
		return 0, ErrBadCode
	}
	if nm1 == 0 {
		return 1, nil
	}
	low, err := r.ReadBits(uint(nm1))
	if err != nil {
		return 0, err
	}
	return 1<<nm1 | low, nil
}

// GammaLen reports the length in bits of the gamma code of v (v >= 1).
func GammaLen(v uint64) int {
	n := bits.Len64(v)
	return 2*n - 1
}

// WriteGamma0 encodes a non-negative value by shifting it to v+1.
func WriteGamma0(w *bitio.Writer, v uint64) { WriteGamma(w, v+1) }

// ReadGamma0 decodes a value written by WriteGamma0.
func ReadGamma0(r *bitio.Reader) (uint64, error) {
	v, err := ReadGamma(r)
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}

// Gamma0Len reports the bit length of the gamma0 code of v (v >= 0).
func Gamma0Len(v uint64) int { return GammaLen(v + 1) }

// WriteDelta appends the Elias delta code of v (v >= 1): the gamma code
// of the bit length of v followed by v's low-order bits.
func WriteDelta(w *bitio.Writer, v uint64) {
	if v == 0 {
		panic("coding: delta code requires v >= 1")
	}
	n := uint(bits.Len64(v))
	WriteGamma(w, uint64(n))
	if n > 1 {
		w.WriteBits(v&(1<<(n-1)-1), n-1)
	}
}

// ReadDelta decodes an Elias delta code.
func ReadDelta(r *bitio.Reader) (uint64, error) {
	n, err := ReadGamma(r)
	if err != nil {
		return 0, err
	}
	if n == 0 || n > 64 {
		return 0, ErrBadCode
	}
	if n == 1 {
		return 1, nil
	}
	low, err := r.ReadBits(uint(n - 1))
	if err != nil {
		return 0, err
	}
	return 1<<(n-1) | low, nil
}

// DeltaLen reports the length in bits of the delta code of v (v >= 1).
func DeltaLen(v uint64) int {
	n := uint64(bits.Len64(v))
	return GammaLen(n) + int(n) - 1
}

// WriteMinimalBinary writes v (0 <= v < bound) using a minimal binary
// (truncated binary) code for the given bound.
func WriteMinimalBinary(w *bitio.Writer, v, bound uint64) {
	if bound == 0 || v >= bound {
		panic("coding: minimal binary value out of range")
	}
	if bound == 1 {
		return // zero bits needed
	}
	k := uint(bits.Len64(bound - 1)) // ceil(log2(bound))
	u := uint64(1)<<k - bound        // number of short code words
	if v < u {
		w.WriteBits(v, k-1)
	} else {
		w.WriteBits(v+u, k)
	}
}

// ReadMinimalBinary decodes a value written by WriteMinimalBinary with
// the same bound.
func ReadMinimalBinary(r *bitio.Reader, bound uint64) (uint64, error) {
	if bound == 0 {
		return 0, ErrBadCode
	}
	if bound == 1 {
		return 0, nil
	}
	k := uint(bits.Len64(bound - 1))
	u := uint64(1)<<k - bound
	v, err := r.ReadBits(k - 1)
	if err != nil {
		return 0, err
	}
	if v < u {
		return v, nil
	}
	b, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	full := v<<1 | uint64(b)
	return full - u, nil
}

// MinimalBinaryLen reports the bit length of the minimal binary code of
// v under the given bound.
func MinimalBinaryLen(v, bound uint64) int {
	if bound <= 1 {
		return 0
	}
	k := uint(bits.Len64(bound - 1))
	u := uint64(1)<<k - bound
	if v < u {
		return int(k - 1)
	}
	return int(k)
}
