package coding

import (
	"container/heap"
	"errors"
	"sort"

	"snode/internal/bitio"
)

// Huffman implements canonical Huffman coding over a dense symbol space
// [0, n). The paper uses Huffman codes in two places: the plain Huffman
// baseline (codes per page by in-degree) and the supernode graph (codes
// per supernode by in-degree), so that frequently referenced vertices get
// short codes.
type Huffman struct {
	codes []huffCode
	// Canonical decode tables, indexed by code length 1..maxLen.
	firstCode  []uint64 // first canonical code of each length
	firstIndex []int32  // index into symByCode of that code
	counts     []int32  // number of codes of each length
	symByCode  []int32  // symbols in canonical order
	maxLen     int
}

type huffCode struct {
	code uint64
	len  uint8
}

// ErrHuffmanEmpty is returned when building over zero symbols.
var ErrHuffmanEmpty = errors.New("coding: huffman over empty alphabet")

// maxHuffmanLen bounds code lengths so codes fit comfortably in uint64
// operations. With length-limiting via frequency flooring this is never
// hit in practice for web-graph degree distributions.
const maxHuffmanLen = 58

type huffNode struct {
	freq        int64
	sym         int32 // -1 for internal
	left, right int32 // node indices, -1 for leaves
	depthMax    int32 // used for tie-breaking to keep trees shallow
}

type huffHeap struct {
	nodes *[]huffNode
	idx   []int32
}

func (h huffHeap) Len() int { return len(h.idx) }
func (h huffHeap) Less(i, j int) bool {
	a, b := (*h.nodes)[h.idx[i]], (*h.nodes)[h.idx[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.depthMax < b.depthMax
}
func (h huffHeap) Swap(i, j int)       { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *huffHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int32)) }
func (h *huffHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}

// NewHuffman builds a canonical Huffman code for the given symbol
// frequencies. Zero frequencies are treated as one so every symbol
// receives a (long) code; negative frequencies are an error.
func NewHuffman(freqs []int64) (*Huffman, error) {
	n := len(freqs)
	if n == 0 {
		return nil, ErrHuffmanEmpty
	}
	if n == 1 {
		// Degenerate alphabet: one symbol, one-bit code.
		h := &Huffman{codes: []huffCode{{code: 0, len: 1}}}
		h.buildDecodeTables()
		return h, nil
	}

	nodes := make([]huffNode, 0, 2*n)
	hp := huffHeap{nodes: &nodes}
	for i, f := range freqs {
		if f < 0 {
			return nil, errors.New("coding: negative huffman frequency")
		}
		if f == 0 {
			f = 1
		}
		nodes = append(nodes, huffNode{freq: f, sym: int32(i), left: -1, right: -1})
		hp.idx = append(hp.idx, int32(i))
	}
	heap.Init(&hp)
	for hp.Len() > 1 {
		a := heap.Pop(&hp).(int32)
		b := heap.Pop(&hp).(int32)
		d := nodes[a].depthMax
		if nodes[b].depthMax > d {
			d = nodes[b].depthMax
		}
		nodes = append(nodes, huffNode{
			freq: nodes[a].freq + nodes[b].freq,
			sym:  -1, left: a, right: b, depthMax: d + 1,
		})
		heap.Push(&hp, int32(len(nodes)-1))
	}
	root := hp.idx[0]

	// Compute code lengths by iterative DFS.
	lengths := make([]uint8, n)
	type frame struct {
		node  int32
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[f.node]
		if nd.sym >= 0 {
			d := f.depth
			if d == 0 {
				d = 1
			}
			if d > maxHuffmanLen {
				return nil, errors.New("coding: huffman code length overflow")
			}
			lengths[nd.sym] = d
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}

	h := &Huffman{codes: make([]huffCode, n)}
	for i, l := range lengths {
		h.codes[i].len = l
	}
	h.assignCanonical()
	h.buildDecodeTables()
	return h, nil
}

// assignCanonical assigns canonical code words from the computed code
// lengths: symbols sorted by (length, symbol) receive consecutive codes.
func (h *Huffman) assignCanonical() {
	n := len(h.codes)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := h.codes[order[a]], h.codes[order[b]]
		if ca.len != cb.len {
			return ca.len < cb.len
		}
		return order[a] < order[b]
	})
	var code uint64
	var prevLen uint8
	for _, sym := range order {
		l := h.codes[sym].len
		code <<= (l - prevLen)
		h.codes[sym].code = code
		code++
		prevLen = l
	}
}

func (h *Huffman) buildDecodeTables() {
	h.maxLen = 0
	for _, c := range h.codes {
		if int(c.len) > h.maxLen {
			h.maxLen = int(c.len)
		}
	}
	h.counts = make([]int32, h.maxLen+1)
	for _, c := range h.codes {
		h.counts[c.len]++
	}
	h.firstCode = make([]uint64, h.maxLen+2)
	h.firstIndex = make([]int32, h.maxLen+2)
	var code uint64
	var index int32
	for l := 1; l <= h.maxLen; l++ {
		h.firstCode[l] = code
		h.firstIndex[l] = index
		code = (code + uint64(h.counts[l])) << 1
		index += h.counts[l]
	}
	// Symbols in canonical order.
	h.symByCode = make([]int32, len(h.codes))
	order := make([]int32, len(h.codes))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := h.codes[order[a]], h.codes[order[b]]
		if ca.len != cb.len {
			return ca.len < cb.len
		}
		return order[a] < order[b]
	})
	copy(h.symByCode, order)
}

// NumSymbols reports the alphabet size.
func (h *Huffman) NumSymbols() int { return len(h.codes) }

// CodeLen reports the code length in bits for symbol s.
func (h *Huffman) CodeLen(s int32) int { return int(h.codes[s].len) }

// Encode appends the code for symbol s to w.
func (h *Huffman) Encode(w *bitio.Writer, s int32) {
	c := h.codes[s]
	w.WriteBits(c.code, uint(c.len))
}

// Decode reads one symbol from r.
func (h *Huffman) Decode(r *bitio.Reader) (int32, error) {
	var code uint64
	for l := 1; l <= h.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(b)
		cnt := h.counts[l]
		if cnt == 0 {
			continue
		}
		first := h.firstCode[l]
		if code < first+uint64(cnt) && code >= first {
			return h.symByCode[h.firstIndex[l]+int32(code-first)], nil
		}
	}
	return 0, ErrBadCode
}

// TotalBits reports the total encoded size of a message with the given
// per-symbol occurrence counts (counts[i] occurrences of symbol i).
func (h *Huffman) TotalBits(counts []int64) int64 {
	var total int64
	for i, c := range counts {
		total += c * int64(h.codes[i].len)
	}
	return total
}
