package coding

import (
	"testing"
	"testing/quick"

	"snode/internal/bitio"
)

func TestZetaRoundTrip(t *testing.T) {
	for k := uint(1); k <= 5; k++ {
		w := bitio.NewWriter(0)
		vals := []uint64{1, 2, 3, 4, 7, 8, 15, 16, 255, 256, 1 << 20, 1<<40 + 99}
		for _, v := range vals {
			WriteZeta(w, v, k)
		}
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		for i, want := range vals {
			got, err := ReadZeta(r, k)
			if err != nil {
				t.Fatalf("k=%d val %d: %v", k, i, err)
			}
			if got != want {
				t.Fatalf("k=%d: got %d, want %d", k, got, want)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("k=%d: %d bits left over", k, r.Remaining())
		}
	}
}

func TestZetaLenMatchesEncoding(t *testing.T) {
	for k := uint(1); k <= 4; k++ {
		for _, v := range []uint64{1, 2, 3, 7, 8, 100, 1023, 1024, 1 << 33} {
			w := bitio.NewWriter(0)
			WriteZeta(w, v, k)
			if got, want := w.BitLen(), ZetaLen(v, k); got != want {
				t.Errorf("ZetaLen(%d, %d) = %d, encoded %d bits", v, k, want, got)
			}
		}
	}
}

func TestZeta1EqualsGammaLength(t *testing.T) {
	// ζ_1 is exactly the gamma code length.
	for _, v := range []uint64{1, 2, 5, 100, 12345, 1 << 30} {
		if ZetaLen(v, 1) != GammaLen(v) {
			t.Fatalf("ζ_1(%d) = %d bits, gamma = %d", v, ZetaLen(v, 1), GammaLen(v))
		}
	}
}

func TestZetaBeatsGammaForMidRangeValues(t *testing.T) {
	// ζ_3 should be shorter than gamma on typical web-gap magnitudes.
	var zeta3, gamma int
	for v := uint64(16); v < 4096; v += 7 {
		zeta3 += ZetaLen(v, 3)
		gamma += GammaLen(v)
	}
	if zeta3 >= gamma {
		t.Fatalf("ζ_3 total %d bits not below gamma %d over mid-range gaps", zeta3, gamma)
	}
}

func TestZetaPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { WriteZeta(bitio.NewWriter(0), 0, 2) },
		func() { WriteZeta(bitio.NewWriter(0), 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad argument did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestZetaDecodeCorruptStream(t *testing.T) {
	// A long unary run implying an overflow shift must error.
	r := bitio.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}, 96)
	if _, err := ReadZeta(r, 8); err == nil {
		t.Fatal("overflowing zeta accepted")
	}
}

func TestQuickZeta(t *testing.T) {
	f := func(raw []uint32, kSeed uint8) bool {
		k := uint(kSeed%5) + 1
		w := bitio.NewWriter(0)
		for _, v := range raw {
			WriteZeta(w, uint64(v)+1, k)
		}
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		for _, v := range raw {
			got, err := ReadZeta(r, k)
			if err != nil || got != uint64(v)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
