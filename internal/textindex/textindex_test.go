package textindex

import (
	"testing"

	"snode/internal/webgraph"
)

func sampleIndex() *Index {
	pages := []webgraph.PageMeta{
		{URL: "u0", Domain: "a.com", Terms: []string{"apple", "banana"}},
		{URL: "u1", Domain: "a.com", Terms: []string{"banana", "cherry", "banana"}},
		{URL: "u2", Domain: "b.com", Terms: []string{"apple", "cherry"}},
		{URL: "u3", Domain: "b.com", Terms: []string{"mobile_networking"}},
	}
	return Build(pages)
}

func TestLookup(t *testing.T) {
	idx := sampleIndex()
	post := idx.Lookup("banana")
	if len(post) != 2 || post[0] != 0 || post[1] != 1 {
		t.Fatalf("banana postings = %v", post)
	}
	if idx.Lookup("missing") != nil {
		t.Fatal("missing term returned postings")
	}
}

func TestDuplicateTermsCountedOnce(t *testing.T) {
	idx := sampleIndex()
	// Page 1 lists "banana" twice; postings must contain it once.
	post := idx.Lookup("banana")
	for i := 1; i < len(post); i++ {
		if post[i] == post[i-1] {
			t.Fatal("duplicate posting")
		}
	}
}

func TestPostingsSorted(t *testing.T) {
	idx := sampleIndex()
	for _, term := range []string{"apple", "banana", "cherry"} {
		post := idx.Lookup(term)
		for i := 1; i < len(post); i++ {
			if post[i] <= post[i-1] {
				t.Fatalf("%s postings unsorted: %v", term, post)
			}
		}
	}
}

func TestPagesWithAtLeast(t *testing.T) {
	idx := sampleIndex()
	got := idx.PagesWithAtLeast([]string{"apple", "banana", "cherry"}, 2)
	// Page 0: apple+banana, page 1: banana+cherry, page 2: apple+cherry.
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	got = idx.PagesWithAtLeast([]string{"apple", "mobile_networking"}, 2)
	if len(got) != 0 {
		t.Fatalf("expected none, got %v", got)
	}
	// Duplicate query terms must not double-count.
	got = idx.PagesWithAtLeast([]string{"apple", "apple"}, 2)
	if len(got) != 0 {
		t.Fatalf("duplicate terms double-counted: %v", got)
	}
}

func TestLookupInRange(t *testing.T) {
	idx := sampleIndex()
	got := idx.LookupInRange("apple", 1, 4)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("range lookup = %v", got)
	}
	got = idx.LookupInRange("apple", 0, 4)
	if len(got) != 2 {
		t.Fatalf("full-range lookup = %v", got)
	}
	if got := idx.LookupInRange("apple", 3, 4); len(got) != 0 {
		t.Fatalf("empty range lookup = %v", got)
	}
}

func TestNumTermsAndSize(t *testing.T) {
	idx := sampleIndex()
	if idx.NumTerms() != 4 {
		t.Fatalf("NumTerms = %d", idx.NumTerms())
	}
	if idx.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}
