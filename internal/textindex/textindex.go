// Package textindex provides the inverted text index complex queries
// resolve their page sets against (paper §4.3: "complex queries require
// access to other indexes such as a text-index"). Terms are normalized
// tokens; scenario phrases are single tokens (e.g. "mobile_networking"),
// matching the crawl generator's vocabulary. Index access is not part
// of measured navigation time, exactly as in the paper.
package textindex

import (
	"sort"

	"snode/internal/webgraph"
)

// Index maps terms to sorted posting lists.
type Index struct {
	postings map[string][]webgraph.PageID
}

// Build indexes the corpus metadata.
func Build(pages []webgraph.PageMeta) *Index {
	idx := &Index{postings: map[string][]webgraph.PageID{}}
	for pid, pm := range pages {
		seen := map[string]bool{}
		for _, t := range pm.Terms {
			if seen[t] {
				continue
			}
			seen[t] = true
			idx.postings[t] = append(idx.postings[t], webgraph.PageID(pid))
		}
	}
	// Page IDs were appended in increasing order, so lists are sorted.
	return idx
}

// Lookup returns the pages containing term (nil if none). The returned
// slice is shared; callers must not modify it.
func (idx *Index) Lookup(term string) []webgraph.PageID {
	return idx.postings[term]
}

// NumTerms reports the vocabulary size.
func (idx *Index) NumTerms() int { return len(idx.postings) }

// PagesWithAtLeast returns, sorted, the pages containing at least k of
// the given terms (each term counted once per page) — the Query 2
// predicate "at least two of the words in Cw".
func (idx *Index) PagesWithAtLeast(terms []string, k int) []webgraph.PageID {
	counts := map[webgraph.PageID]int{}
	seen := map[string]bool{}
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		for _, p := range idx.postings[t] {
			counts[p]++
		}
	}
	var out []webgraph.PageID
	for p, c := range counts {
		if c >= k {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LookupInRange returns the pages containing term whose IDs fall in
// [lo, hi) — term search restricted to a domain's contiguous ID range.
func (idx *Index) LookupInRange(term string, lo, hi webgraph.PageID) []webgraph.PageID {
	post := idx.postings[term]
	a := sort.Search(len(post), func(i int) bool { return post[i] >= lo })
	b := sort.Search(len(post), func(i int) bool { return post[i] >= hi })
	return post[a:b]
}

// SizeBytes estimates the index memory footprint.
func (idx *Index) SizeBytes() int64 {
	var n int64
	for t, post := range idx.postings {
		n += int64(len(t)) + 4*int64(len(post)) + 24
	}
	return n
}
