package refenc

import (
	"errors"
	"math"
)

// WEdge is a weighted directed edge in an affinity graph.
type WEdge struct {
	From, To int
	W        float64
}

// ErrUnreachable is returned when some vertex has no incoming edge on
// any path from the root.
var ErrUnreachable = errors.New("refenc: vertex unreachable from root")

// MinArborescence computes a minimum-weight spanning arborescence rooted
// at root over a directed graph with n vertices, using the
// Chu-Liu/Edmonds algorithm. It returns, for each vertex other than the
// root, the index into edges of its chosen incoming edge (-1 for the
// root), plus the total weight.
//
// This is the optimal reference-assignment procedure of Adler &
// Mitzenmacher ("Towards compressing Web graphs"): vertices are pages,
// the root's out-edges carry the cost of encoding a page directly, and
// page-to-page edges carry the cost of reference-encoding the target
// using the source. The algorithm is O(V·E); the paper applies it only
// to small intranode/superedge graphs, as do we.
func MinArborescence(n, root int, edges []WEdge) (parentEdge []int, total float64, err error) {
	if n <= 0 || root < 0 || root >= n {
		return nil, 0, errors.New("refenc: invalid arborescence arguments")
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, 0, errors.New("refenc: edge endpoint out of range")
		}
	}
	parentEdge, total, err = edmonds(n, root, edges, identityOrig(len(edges)))
	return parentEdge, total, err
}

func identityOrig(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

// edmonds runs one level of the contraction recursion. orig maps each
// working edge to its index in the caller's original edge list so that
// results always refer to original edges.
func edmonds(n, root int, edges []WEdge, orig []int) ([]int, float64, error) {
	const inf = math.MaxFloat64

	// Choose the cheapest incoming edge for every non-root vertex.
	inW := make([]float64, n)
	inEdge := make([]int, n) // index into edges
	for v := 0; v < n; v++ {
		inW[v] = inf
		inEdge[v] = -1
	}
	for i, e := range edges {
		if e.To == root || e.From == e.To {
			continue
		}
		if e.W < inW[e.To] {
			inW[e.To] = e.W
			inEdge[e.To] = i
		}
	}
	for v := 0; v < n; v++ {
		if v != root && inEdge[v] == -1 {
			return nil, 0, ErrUnreachable
		}
	}

	// Detect cycles among chosen in-edges.
	const (
		unvisited = 0
		inPath    = 1
		done      = 2
	)
	state := make([]int, n)
	cycleID := make([]int, n)
	for i := range cycleID {
		cycleID[i] = -1
	}
	nCycles := 0
	state[root] = done
	for v := 0; v < n; v++ {
		if state[v] != unvisited {
			continue
		}
		// Walk parent pointers until hitting a visited vertex.
		u := v
		var path []int
		for state[u] == unvisited {
			state[u] = inPath
			path = append(path, u)
			u = edges[inEdge[u]].From
		}
		if state[u] == inPath {
			// Found a new cycle: mark it from u around.
			w := u
			for {
				cycleID[w] = nCycles
				w = edges[inEdge[w]].From
				if w == u {
					break
				}
			}
			nCycles++
		}
		for _, p := range path {
			state[p] = done
		}
	}

	if nCycles == 0 {
		// Base case: the chosen in-edges form an arborescence.
		result := make([]int, n)
		var total float64
		for v := 0; v < n; v++ {
			if v == root {
				result[v] = -1
				continue
			}
			result[v] = orig[inEdge[v]]
			total += edges[inEdge[v]].W
		}
		return result, total, nil
	}

	// Contract each cycle into a single vertex.
	newID := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if cycleID[v] == -1 {
			newID[v] = next
			next++
		}
	}
	cycleNode := make([]int, nCycles)
	for c := 0; c < nCycles; c++ {
		cycleNode[c] = next
		next++
	}
	for v := 0; v < n; v++ {
		if cycleID[v] != -1 {
			newID[v] = cycleNode[cycleID[v]]
		}
	}

	var newEdges []WEdge
	var newOrig []int
	// For edges entering a cycle, remember which working edge they came
	// from so expansion can find the cycle vertex actually entered.
	entering := make([]int, 0)
	for i, e := range edges {
		if e.To == root {
			continue
		}
		u, v := newID[e.From], newID[e.To]
		if u == v {
			continue
		}
		w := e.W
		if cycleID[e.To] != -1 {
			w -= inW[e.To] // standard reweighting
		}
		newEdges = append(newEdges, WEdge{From: u, To: v, W: w})
		newOrig = append(newOrig, orig[i])
		entering = append(entering, i)
	}

	sub, subTotal, err := edmonds(next, newID[root], newEdges, identityOrig(len(newEdges)))
	if err != nil {
		return nil, 0, err
	}

	// Expand: translate the recursion's chosen edges back.
	result := make([]int, n)
	for i := range result {
		result[i] = -1
	}
	chosenInto := make([]int, nCycles) // working-edge index entering each cycle
	for i := range chosenInto {
		chosenInto[i] = -1
	}
	var total float64
	for v2 := 0; v2 < next; v2++ {
		ei := sub[v2]
		if ei == -1 {
			continue
		}
		workIdx := entering[ei]
		we := edges[workIdx]
		if cycleID[we.To] != -1 {
			chosenInto[cycleID[we.To]] = workIdx
		} else {
			result[we.To] = orig[workIdx]
			total += we.W
		}
	}
	_ = subTotal
	// Inside each cycle, keep all cycle edges except the one into the
	// vertex where the external edge enters.
	for c := 0; c < nCycles; c++ {
		enterIdx := chosenInto[c]
		if enterIdx == -1 {
			return nil, 0, errors.New("refenc: internal error, cycle without entry")
		}
		enterTo := edges[enterIdx].To
		result[enterTo] = orig[enterIdx]
		total += edges[enterIdx].W
		w := edges[inEdge[enterTo]].From
		for w != enterTo {
			result[w] = orig[inEdge[w]]
			total += edges[inEdge[w]].W
			w = edges[inEdge[w]].From
		}
	}
	return result, total, nil
}
