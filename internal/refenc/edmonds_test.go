package refenc

import (
	"math"
	"testing"

	"snode/internal/randutil"
)

// bruteForceArborescence enumerates every parent assignment over the
// non-root vertices and returns the minimum total weight of a valid
// arborescence (or +Inf if none exists). Only usable for tiny graphs.
func bruteForceArborescence(n, root int, edges []WEdge) float64 {
	// Best incoming edges per (from,to) pair.
	best := make([][]float64, n)
	for i := range best {
		best[i] = make([]float64, n)
		for j := range best[i] {
			best[i][j] = math.Inf(1)
		}
	}
	for _, e := range edges {
		if e.From != e.To && e.W < best[e.From][e.To] {
			best[e.From][e.To] = e.W
		}
	}
	verts := []int{}
	for v := 0; v < n; v++ {
		if v != root {
			verts = append(verts, v)
		}
	}
	bestTotal := math.Inf(1)
	parent := make([]int, n)
	var rec func(i int, total float64)
	rec = func(i int, total float64) {
		if total >= bestTotal {
			return
		}
		if i == len(verts) {
			// Check acyclicity / reachability from root.
			for _, v := range verts {
				u := v
				steps := 0
				for u != root {
					u = parent[u]
					steps++
					if steps > n {
						return // cycle
					}
				}
			}
			bestTotal = total
			return
		}
		v := verts[i]
		for p := 0; p < n; p++ {
			if p == v || math.IsInf(best[p][v], 1) {
				continue
			}
			parent[v] = p
			rec(i+1, total+best[p][v])
		}
	}
	rec(0, 0)
	return bestTotal
}

func arborescenceTotal(t *testing.T, n, root int, edges []WEdge) float64 {
	t.Helper()
	parentEdge, total, err := MinArborescence(n, root, edges)
	if err != nil {
		t.Fatalf("MinArborescence: %v", err)
	}
	// Validate the result IS an arborescence and recompute the total.
	var check float64
	for v := 0; v < n; v++ {
		if v == root {
			if parentEdge[v] != -1 {
				t.Fatalf("root has a parent edge")
			}
			continue
		}
		ei := parentEdge[v]
		if ei < 0 || ei >= len(edges) {
			t.Fatalf("vertex %d: bad edge index %d", v, ei)
		}
		if edges[ei].To != v {
			t.Fatalf("vertex %d: chosen edge enters %d", v, edges[ei].To)
		}
		check += edges[ei].W
		// Walk to root.
		u := v
		for steps := 0; u != root; steps++ {
			if steps > n {
				t.Fatalf("vertex %d: cycle in result", v)
			}
			u = edges[parentEdge[u]].From
		}
	}
	if math.Abs(check-total) > 1e-9 {
		t.Fatalf("reported total %f != recomputed %f", total, check)
	}
	return total
}

func TestArborescenceSimpleChain(t *testing.T) {
	edges := []WEdge{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 5},
	}
	total := arborescenceTotal(t, 3, 0, edges)
	if total != 2 {
		t.Fatalf("total = %f, want 2", total)
	}
}

func TestArborescencePrefersCheapCycleBreak(t *testing.T) {
	// Classic case: a 2-cycle between 1 and 2 that must be broken.
	edges := []WEdge{
		{0, 1, 10}, {0, 2, 10},
		{1, 2, 1}, {2, 1, 1},
	}
	total := arborescenceTotal(t, 3, 0, edges)
	if total != 11 {
		t.Fatalf("total = %f, want 11", total)
	}
}

func TestArborescenceUnreachable(t *testing.T) {
	edges := []WEdge{{0, 1, 1}} // vertex 2 has no incoming edge
	if _, _, err := MinArborescence(3, 0, edges); err != ErrUnreachable {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
}

func TestArborescenceInvalidArgs(t *testing.T) {
	if _, _, err := MinArborescence(0, 0, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := MinArborescence(2, 5, nil); err == nil {
		t.Fatal("root out of range accepted")
	}
	if _, _, err := MinArborescence(2, 0, []WEdge{{0, 7, 1}}); err == nil {
		t.Fatal("edge out of range accepted")
	}
}

func TestArborescenceSingleVertex(t *testing.T) {
	parentEdge, total, err := MinArborescence(1, 0, nil)
	if err != nil || total != 0 || parentEdge[0] != -1 {
		t.Fatalf("single vertex: %v %f %v", parentEdge, total, err)
	}
}

func TestArborescenceNestedCycles(t *testing.T) {
	// Cycle 1-2 nested inside a larger structure with cycle 3-4.
	edges := []WEdge{
		{0, 1, 8}, {1, 2, 2}, {2, 1, 2},
		{2, 3, 3}, {3, 4, 1}, {4, 3, 1}, {0, 4, 9},
	}
	got := arborescenceTotal(t, 5, 0, edges)
	want := bruteForceArborescence(5, 0, edges)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %f, brute force %f", got, want)
	}
}

func TestArborescenceMatchesBruteForceRandom(t *testing.T) {
	rng := randutil.NewRNG(77)
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5) // 2..6 vertices
		root := 0
		var edges []WEdge
		// Ensure reachability: root has an edge to everyone.
		for v := 1; v < n; v++ {
			edges = append(edges, WEdge{0, v, float64(1 + rng.Intn(20))})
		}
		extra := rng.Intn(12)
		for e := 0; e < extra; e++ {
			f, to := rng.Intn(n), rng.Intn(n)
			if f == to || to == root {
				continue
			}
			edges = append(edges, WEdge{f, to, float64(1 + rng.Intn(20))})
		}
		got := arborescenceTotal(t, n, root, edges)
		want := bruteForceArborescence(n, root, edges)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d, edges=%v): got %f, brute force %f",
				trial, n, edges, got, want)
		}
	}
}
