package refenc

import (
	"testing"
	"testing/quick"

	"snode/internal/bitio"
	"snode/internal/randutil"
)

// Decoders must never panic on corrupt input — a damaged index file has
// to surface as an error, not take the repository down.

func decodeNoPanic(t *testing.T, buf []byte, m int, bound uint64) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked on %d-byte input (m=%d bound=%d): %v",
				len(buf), m, bound, r)
		}
	}()
	// The result does not matter; only that it returns.
	_, _ = DecodeListsBounded(bitio.NewByteReader(buf), m, bound)
}

func TestDecodeRandomBytesNoPanic(t *testing.T) {
	f := func(buf []byte, m uint8, bound uint16) bool {
		decodeNoPanic(t, buf, int(m%64), uint64(bound))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBitFlippedStreams(t *testing.T) {
	// Encode real data, flip each byte in turn, decode.
	rng := randutil.NewRNG(99)
	lists := randomLists(rng, 12)
	for _, opt := range []Options{{Window: 8}, {Exact: true}, {Window: 8, TargetBound: 4096}} {
		w := bitio.NewWriter(0)
		if _, err := EncodeLists(w, lists, opt); err != nil {
			t.Fatal(err)
		}
		clean := w.Bytes()
		for i := range clean {
			buf := append([]byte(nil), clean...)
			buf[i] ^= 0xFF
			decodeNoPanic(t, buf, len(lists), opt.TargetBound)
		}
	}
}

func TestDecodeTruncatedStreams(t *testing.T) {
	rng := randutil.NewRNG(7)
	lists := randomLists(rng, 10)
	w := bitio.NewWriter(0)
	if _, err := EncodeLists(w, lists, Options{Window: 8}); err != nil {
		t.Fatal(err)
	}
	clean := w.Bytes()
	for cut := 0; cut < len(clean); cut++ {
		decodeNoPanic(t, clean[:cut], len(lists), 0)
	}
}

func TestDecodeWrongListCount(t *testing.T) {
	rng := randutil.NewRNG(13)
	lists := randomLists(rng, 8)
	w := bitio.NewWriter(0)
	if _, err := EncodeLists(w, lists, Options{Window: 8}); err != nil {
		t.Fatal(err)
	}
	buf := w.Bytes()
	// Asking for more lists than encoded must error, not panic.
	decodeNoPanic(t, buf, 64, 0)
	if _, err := DecodeLists(bitio.NewByteReader(buf), 64); err == nil {
		t.Fatal("over-long decode succeeded")
	}
}

func TestDecodeWrongBound(t *testing.T) {
	rng := randutil.NewRNG(17)
	lists := randomLists(rng, 8)
	w := bitio.NewWriter(0)
	if _, err := EncodeLists(w, lists, Options{Window: 8, TargetBound: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	// Decoding with a different bound shifts the bit stream; it must
	// fail or mis-decode gracefully, never panic.
	decodeNoPanic(t, w.Bytes(), 8, 7)
	decodeNoPanic(t, w.Bytes(), 8, 0)
}
