package refenc

import (
	"testing"
	"testing/quick"

	"snode/internal/bitio"
	"snode/internal/coding"
	"snode/internal/randutil"
)

func roundTrip(t *testing.T, lists [][]int32, opt Options) Stats {
	t.Helper()
	w := bitio.NewWriter(0)
	st, err := EncodeLists(w, lists, opt)
	if err != nil {
		t.Fatalf("EncodeLists: %v", err)
	}
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	got, err := DecodeLists(r, len(lists))
	if err != nil {
		t.Fatalf("DecodeLists: %v", err)
	}
	if len(got) != len(lists) {
		t.Fatalf("decoded %d lists, want %d", len(got), len(lists))
	}
	for i := range lists {
		if len(got[i]) != len(lists[i]) {
			t.Fatalf("list %d: len %d, want %d (%v vs %v)",
				i, len(got[i]), len(lists[i]), got[i], lists[i])
		}
		for j := range lists[i] {
			if got[i][j] != lists[i][j] {
				t.Fatalf("list %d elem %d: got %d, want %d", i, j, got[i][j], lists[i][j])
			}
		}
	}
	return st
}

var sampleLists = [][]int32{
	{3, 7, 12, 15, 20},
	{3, 12, 15, 18, 20}, // similar to list 0 — should be referenced
	{},
	{0},
	{3, 7, 12, 15, 20}, // identical to list 0
	{100, 200, 300},
}

func TestWindowRoundTrip(t *testing.T) {
	st := roundTrip(t, sampleLists, Options{Window: DefaultWindow})
	if st.Referenced == 0 {
		t.Fatal("no list used a reference despite similarity")
	}
}

func TestExactRoundTrip(t *testing.T) {
	st := roundTrip(t, sampleLists, Options{Exact: true})
	if st.Referenced == 0 {
		t.Fatal("exact strategy used no references")
	}
}

func TestNoWindowEncodesDirectly(t *testing.T) {
	st := roundTrip(t, sampleLists, Options{Window: 0})
	if st.Referenced != 0 {
		t.Fatalf("window 0 used %d references", st.Referenced)
	}
}

func TestEmptyInput(t *testing.T) {
	roundTrip(t, nil, Options{Window: 4})
	roundTrip(t, nil, Options{Exact: true})
	roundTrip(t, [][]int32{{}}, Options{Window: 4})
	roundTrip(t, [][]int32{{}, {}}, Options{Exact: true})
}

func TestRejectsBadLists(t *testing.T) {
	w := bitio.NewWriter(0)
	if _, err := EncodeLists(w, [][]int32{{5, 5}}, Options{}); err == nil {
		t.Fatal("duplicate entries accepted")
	}
	if _, err := EncodeLists(w, [][]int32{{7, 3}}, Options{}); err == nil {
		t.Fatal("descending entries accepted")
	}
	if _, err := EncodeLists(w, [][]int32{{-1, 3}}, Options{}); err == nil {
		t.Fatal("negative entries accepted")
	}
}

// The figure-5 example from the paper: x = {5,7,12,18,20},
// y = {5,12,18,19,27}. Verify the shared/extra decomposition.
func TestPaperFigure5Decomposition(t *testing.T) {
	x := []int32{5, 7, 12, 18, 20}
	y := []int32{5, 12, 18, 19, 27}
	bits := make([]bool, len(x))
	extras := make([]int32, len(y))
	nShared, nExtra, _, _ := refParts(x, y, bits, extras, 0, GapGamma)
	if nShared != 3 || nExtra != 2 {
		t.Fatalf("shared=%d extras=%d, want 3 and 2", nShared, nExtra)
	}
	wantBits := []bool{true, false, true, true, false}
	for i := range wantBits {
		if bits[i] != wantBits[i] {
			t.Fatalf("bit %d = %v, want %v", i, bits[i], wantBits[i])
		}
	}
	if extras[0] != 19 || extras[1] != 27 {
		t.Fatalf("extras = %v, want [19 27]", extras[:nExtra])
	}
}

func TestSimilarListsCompressBetterThanDirect(t *testing.T) {
	// 50 near-identical lists: reference encoding must beat direct.
	rng := randutil.NewRNG(5)
	base := []int32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}
	lists := make([][]int32, 50)
	for i := range lists {
		var l []int32
		for _, v := range base {
			if rng.Bool(0.9) {
				l = append(l, v)
			}
		}
		if rng.Bool(0.3) {
			l = append(l, 200+int32(i))
		}
		lists[i] = l
	}
	wRef := bitio.NewWriter(0)
	stRef, err := EncodeLists(wRef, lists, Options{Window: DefaultWindow})
	if err != nil {
		t.Fatal(err)
	}
	wDir := bitio.NewWriter(0)
	stDir, err := EncodeLists(wDir, lists, Options{Window: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stRef.Bits >= stDir.Bits {
		t.Fatalf("reference encoding (%d bits) not smaller than direct (%d bits)",
			stRef.Bits, stDir.Bits)
	}
	// And the exact strategy must be at least as good as window in cost
	// terms, modulo its per-node index overhead; just require it works
	// and references heavily.
	wEx := bitio.NewWriter(0)
	stEx, err := EncodeLists(wEx, lists, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if stEx.Referenced < 40 {
		t.Fatalf("exact strategy referenced only %d/50", stEx.Referenced)
	}
	roundTrip(t, lists, Options{Window: DefaultWindow})
	roundTrip(t, lists, Options{Exact: true})
}

func TestWindowRespected(t *testing.T) {
	// Identical lists far apart: window 2 cannot reference across the
	// gap, so the distant copy is direct; a large window references it.
	lists := [][]int32{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{99}, {98}, {97}, {96},
		{1, 2, 3, 4, 5, 6, 7, 8},
	}
	w2 := bitio.NewWriter(0)
	st2, err := EncodeLists(w2, lists, Options{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	w8 := bitio.NewWriter(0)
	st8, err := EncodeLists(w8, lists, Options{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st8.Bits >= st2.Bits {
		t.Fatalf("window 8 (%d bits) should beat window 2 (%d bits)", st8.Bits, st2.Bits)
	}
	roundTrip(t, lists, Options{Window: 2})
}

func randomLists(rng *randutil.RNG, m int) [][]int32 {
	lists := make([][]int32, m)
	for i := range lists {
		n := rng.Intn(12)
		var p []int32
		cur := int32(rng.Intn(5))
		for j := 0; j < n; j++ {
			p = append(p, cur)
			cur += int32(rng.Intn(30)) + 1
		}
		lists[i] = p
	}
	return lists
}

func TestQuickRoundTripBothStrategies(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randutil.NewRNG(seed)
		lists := randomLists(rng, rng.Intn(20)+1)
		for _, opt := range []Options{{Window: 0}, {Window: 4}, {Window: 16}, {Exact: true}} {
			w := bitio.NewWriter(0)
			if _, err := EncodeLists(w, lists, opt); err != nil {
				return false
			}
			r := bitio.NewReader(w.Bytes(), w.BitLen())
			got, err := DecodeLists(r, len(lists))
			if err != nil {
				return false
			}
			for i := range lists {
				if len(got[i]) != len(lists[i]) {
					return false
				}
				for j := range lists[i] {
					if got[i][j] != lists[i][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExactNeverWorseThanDirectPayload(t *testing.T) {
	// The arborescence chooses direct encoding when referencing does not
	// pay, so exact total payload (minus its index overhead) is bounded
	// by the all-direct payload.
	rng := randutil.NewRNG(31)
	for trial := 0; trial < 20; trial++ {
		lists := randomLists(rng, 12)
		wEx := bitio.NewWriter(0)
		stEx, err := EncodeLists(wEx, lists, Options{Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		wDir := bitio.NewWriter(0)
		stDir, err := EncodeLists(wDir, lists, Options{Window: 0})
		if err != nil {
			t.Fatal(err)
		}
		// Allow for the minimal-binary node indices (≤ 4 bits each here)
		// and the gamma-coded back-distance designators, which the
		// arborescence cost model does not include (up to ~7 bits for
		// m=12 versus the 1-bit direct designator).
		overhead := 11 * len(lists)
		if stEx.Bits > stDir.Bits+overhead {
			t.Fatalf("trial %d: exact %d bits exceeds direct %d + %d overhead",
				trial, stEx.Bits, stDir.Bits, overhead)
		}
	}
}

func BenchmarkEncodeWindow(b *testing.B) {
	rng := randutil.NewRNG(1)
	lists := randomLists(rng, 500)
	w := bitio.NewWriter(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if _, err := EncodeLists(w, lists, Options{Window: DefaultWindow}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeWindow(b *testing.B) {
	rng := randutil.NewRNG(1)
	lists := randomLists(rng, 500)
	w := bitio.NewWriter(1 << 16)
	if _, err := EncodeLists(w, lists, Options{Window: DefaultWindow}); err != nil {
		b.Fatal(err)
	}
	buf := w.Bytes()
	n := w.BitLen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(buf, n)
		if _, err := DecodeLists(r, len(lists)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGapCodeRoundTrips(t *testing.T) {
	rng := randutil.NewRNG(23)
	lists := randomLists(rng, 24)
	for _, gc := range []GapCode{GapGamma, GapDelta, GapZeta2, GapZeta3} {
		for _, opt := range []Options{
			{Window: 8, GapCode: gc},
			{Exact: true, GapCode: gc},
			{Window: 8, GapCode: gc, TargetBound: 1 << 14},
		} {
			w := bitio.NewWriter(0)
			if _, err := EncodeLists(w, lists, opt); err != nil {
				t.Fatalf("gap code %d: %v", gc, err)
			}
			r := bitio.NewReader(w.Bytes(), w.BitLen())
			got, err := DecodeListsBounded(r, len(lists), opt.TargetBound)
			if err != nil {
				t.Fatalf("gap code %d decode: %v", gc, err)
			}
			for i := range lists {
				if len(got[i]) != len(lists[i]) {
					t.Fatalf("gap code %d: list %d length", gc, i)
				}
				for j := range lists[i] {
					if got[i][j] != lists[i][j] {
						t.Fatalf("gap code %d: list %d mismatch", gc, i)
					}
				}
			}
		}
	}
}

func TestUnknownGapCodeRejected(t *testing.T) {
	w := bitio.NewWriter(0)
	if _, err := EncodeLists(w, nil, Options{GapCode: 99}); err == nil {
		t.Fatal("unknown gap code accepted")
	}
}

func TestZetaGapCodeCompetitive(t *testing.T) {
	// On wide power-law gaps, ζ_2/ζ_3 should not be dramatically worse
	// than gamma, and often better; just assert the encoder is wired in
	// and within 20% either way on this workload.
	rng := randutil.NewRNG(31)
	var lists [][]int32
	for i := 0; i < 200; i++ {
		var l []int32
		cur := int32(rng.Intn(64))
		n := 4 + rng.Intn(24)
		for j := 0; j < n; j++ {
			l = append(l, cur)
			// Power-law-ish gaps.
			g := 1 << uint(rng.Intn(12))
			cur += int32(rng.Intn(g) + 1)
		}
		lists = append(lists, l)
	}
	sizes := map[GapCode]int{}
	for _, gc := range []GapCode{GapGamma, GapZeta3} {
		w := bitio.NewWriter(0)
		st, err := EncodeLists(w, lists, Options{Window: 8, GapCode: gc})
		if err != nil {
			t.Fatal(err)
		}
		sizes[gc] = st.Bits
	}
	ratio := float64(sizes[GapZeta3]) / float64(sizes[GapGamma])
	if ratio > 1.2 {
		t.Fatalf("ζ_3 is %.2fx gamma on power-law gaps", ratio)
	}
	t.Logf("gamma=%d bits, zeta3=%d bits (ratio %.3f)", sizes[GapGamma], sizes[GapZeta3], ratio)
}

// A coded gap of 2^63 or more makes int64(d) negative, so a naive
// nv >= bound check passes and int32 truncation emits an
// in-range-looking ID. readRun's fused bounds check must reject it.
func TestReadRunRejectsOverflowGap(t *testing.T) {
	for _, gap := range []uint64{1 << 63, 1<<63 + 5, 1<<64 - 1} {
		w := bitio.NewWriter(0)
		coding.WriteMinimalBinary(w, 0, 1)
		coding.WriteGamma(w, gap)
		r := bitio.NewReader(w.Bytes(), w.BitLen())
		got, err := readRun(r, 2, 1, GapGamma, nil)
		if err == nil {
			t.Fatalf("gap %d under bound 1 accepted: %v", gap, got)
		}
	}
}

// The same hole through the public decode path: a direct windowed list
// of two values under bound 1 whose gap is 2^63+5 must fail to decode,
// not come back as [0 5].
func TestDecodeListsBoundedRejectsOverflowGap(t *testing.T) {
	w := bitio.NewWriter(0)
	w.WriteBit(0)                         // window strategy
	w.WriteBits(uint64(GapGamma), 2)      // gap code
	coding.WriteGamma0(w, 0)              // no reference
	coding.WriteGamma0(w, 2)              // degree 2
	coding.WriteMinimalBinary(w, 0, 1)    // first value: zero bits under bound 1
	coding.WriteGamma(w, uint64(1)<<63+5) // corrupt gap
	r := bitio.NewReader(w.Bytes(), w.BitLen())
	if lists, err := DecodeListsBounded(r, 1, 1); err == nil {
		t.Fatalf("overflow gap accepted: %v", lists)
	}
}
