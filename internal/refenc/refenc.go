// Package refenc implements the reference-encoding graph compression of
// paper §3.1 (after Adler & Mitzenmacher): the adjacency list of a page
// y may be encoded relative to a reference page x as a copy bit-vector
// over x's list plus a list of extra targets. The S-Node scheme applies
// it to intranode and superedge graphs.
//
// Two reference-selection strategies are provided:
//
//   - Window: each list may reference one of the previous W lists. The
//     choice is individually optimal and the result is cycle-free by
//     construction, so lists decode in storage order. This is the
//     production strategy (the Link Database uses the same idea).
//   - Exact: the full affinity graph of Adler & Mitzenmacher — an edge
//     x→y weighted by the cost of encoding y given x, plus root edges
//     weighted by direct-encoding cost — solved with the Chu-Liu/Edmonds
//     minimum-arborescence algorithm (edmonds.go). Lists are stored in
//     BFS order of the arborescence with explicit node indices.
//
// Both strategies share one wire format per list: a gamma-coded
// reference designator, then either {degree, gap-coded targets} or
// {RLE copy bit-vector, extra count, gap-coded extras}.
package refenc

import (
	"fmt"

	"snode/internal/bitio"
	"snode/internal/coding"
)

// Options configures encoding.
type Options struct {
	// Window is the number of preceding lists considered as references
	// (ignored when Exact). Zero disables referencing: all lists are
	// encoded directly.
	Window int
	// Exact selects the affinity-graph/minimum-arborescence strategy.
	// It is O(m²) space and O(m³) time in the number of lists; callers
	// cap m (the builder only uses it for small graphs or ablations).
	Exact bool
	// TargetBound, when positive, declares that all targets lie in
	// [0, TargetBound); the first value of each gap-coded run is then
	// written in minimal binary instead of gamma — a significant saving
	// for the small local ID spaces of intranode and superedge graphs.
	// Decoders must pass the same bound to DecodeListsBounded.
	TargetBound uint64
	// GapCode selects the integer code for successive gaps (the paper
	// uses gamma; ζ codes are the post-paper refinement WebGraph
	// standardized on). Recorded in the stream header, so decoders need
	// no out-of-band knowledge.
	GapCode GapCode
}

// GapCode enumerates gap coders.
type GapCode uint8

// Gap coders selectable in Options.
const (
	GapGamma GapCode = iota // Elias gamma (the paper's choice)
	GapDelta                // Elias delta
	GapZeta2                // ζ_2 (Boldi & Vigna)
	GapZeta3                // ζ_3
)

func (g GapCode) write(w *bitio.Writer, v uint64) {
	switch g {
	case GapDelta:
		coding.WriteDelta(w, v)
	case GapZeta2:
		coding.WriteZeta(w, v, 2)
	case GapZeta3:
		coding.WriteZeta(w, v, 3)
	default:
		coding.WriteGamma(w, v)
	}
}

func (g GapCode) read(r *bitio.Reader) (uint64, error) {
	switch g {
	case GapDelta:
		return coding.ReadDelta(r)
	case GapZeta2:
		return coding.ReadZeta(r, 2)
	case GapZeta3:
		return coding.ReadZeta(r, 3)
	default:
		return coding.ReadGamma(r)
	}
}

func (g GapCode) bits(v uint64) int {
	switch g {
	case GapDelta:
		return coding.DeltaLen(v)
	case GapZeta2:
		return coding.ZetaLen(v, 2)
	case GapZeta3:
		return coding.ZetaLen(v, 3)
	default:
		return coding.GammaLen(v)
	}
}

// DefaultWindow matches the Link Database's window of 8.
const DefaultWindow = 8

// firstValLen is the cost of the first value of a gap run: minimal
// binary under a bound, gamma otherwise.
func firstValLen(v int32, bound uint64) int {
	if bound > 0 {
		return coding.MinimalBinaryLen(uint64(v), bound)
	}
	return coding.GammaLen(uint64(v) + 1)
}

// directCost is the encoded size of a list with no reference, including
// the reference designator.
func directCost(list []int32, bound uint64, gc GapCode) int {
	n := coding.Gamma0Len(0) + coding.Gamma0Len(uint64(len(list)))
	if len(list) == 0 {
		return n
	}
	n += firstValLen(list[0], bound)
	for i := 1; i < len(list); i++ {
		n += gc.bits(uint64(list[i] - list[i-1]))
	}
	return n
}

// refCost is the encoded size of list encoded against ref, excluding
// the reference designator (which differs per strategy).
func refCost(ref, list []int32, bound uint64, gc GapCode) int {
	nShared, nExtra, rleLen, gapLen := refParts(ref, list, nil, nil, bound, gc)
	_ = nShared
	return rleLen + coding.Gamma0Len(uint64(nExtra)) + gapLen
}

// refParts walks ref and list once, computing the shared/extra split.
// When bits/extras are non-nil they are filled for encoding.
func refParts(ref, list []int32, bits []bool, extras []int32, bound uint64, gc GapCode) (nShared, nExtra, rleLen, gapLen int) {
	i, j := 0, 0
	var lastRun bool
	var runLen uint64
	rleLen = 0
	flush := func() {
		if runLen > 0 {
			rleLen += coding.GammaLen(runLen)
		}
	}
	pushBit := func(b bool) {
		if bits != nil {
			bits[i] = b
		}
		if rleLen == 0 && runLen == 0 {
			rleLen = 1 // first-bit marker
			lastRun = b
			runLen = 1
			return
		}
		if b == lastRun {
			runLen++
			return
		}
		flush()
		lastRun = b
		runLen = 1
	}
	var prevExtra int32 = -1
	pushExtra := func(v int32) {
		if extras != nil {
			extras[nExtra] = v
		}
		if prevExtra < 0 {
			gapLen += firstValLen(v, bound)
		} else {
			gapLen += gc.bits(uint64(v - prevExtra))
		}
		prevExtra = v
		nExtra++
	}
	for i < len(ref) {
		switch {
		case j >= len(list) || ref[i] < list[j]:
			pushBit(false)
			i++
		case ref[i] == list[j]:
			pushBit(true)
			nShared++
			i++
			j++
		default: // list[j] < ref[i]
			pushExtra(list[j])
			j++
		}
	}
	for ; j < len(list); j++ {
		pushExtra(list[j])
	}
	flush()
	return nShared, nExtra, rleLen, gapLen
}

// Stats reports how an encoding went.
type Stats struct {
	Lists      int
	Referenced int // lists that used a reference
	Bits       int
}

// EncodeLists appends the encoded form of lists to w. Lists must be
// strictly increasing sequences of non-negative target IDs. The format
// begins with one bit selecting the strategy so DecodeLists needs no
// out-of-band options.
func EncodeLists(w *bitio.Writer, lists [][]int32, opt Options) (Stats, error) {
	for li, l := range lists {
		for i := 1; i < len(l); i++ {
			if l[i] <= l[i-1] {
				return Stats{}, fmt.Errorf("refenc: list %d not strictly increasing", li)
			}
		}
		if len(l) > 0 && l[0] < 0 {
			return Stats{}, fmt.Errorf("refenc: list %d has negative target", li)
		}
	}
	if opt.GapCode > GapZeta3 {
		return Stats{}, fmt.Errorf("refenc: unknown gap code %d", opt.GapCode)
	}
	if opt.Exact {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteBits(uint64(opt.GapCode), 2)
	if opt.Exact {
		return encodeExact(w, lists, opt.TargetBound, opt.GapCode)
	}
	return encodeWindow(w, lists, opt.Window, opt.TargetBound, opt.GapCode)
}

// writeRun writes a sorted list as first value (minimal binary under
// bound when positive, else gamma) followed by coded gaps.
func writeRun(w *bitio.Writer, list []int32, bound uint64, gc GapCode) {
	if len(list) == 0 {
		return
	}
	if bound > 0 {
		coding.WriteMinimalBinary(w, uint64(list[0]), bound)
	} else {
		coding.WriteGamma(w, uint64(list[0])+1)
	}
	for i := 1; i < len(list); i++ {
		gc.write(w, uint64(list[i]-list[i-1]))
	}
}

// readRun decodes n values written by writeRun, appending to dst. When
// bound is positive every decoded value is validated against [0, bound)
// as it is produced — a minimal binary first value cannot escape, but a
// corrupt gap can push the running sum past the bound (or wrap int32),
// and fusing the check into the decode loop replaces the second O(E)
// validation pass callers used to make over every decoded graph.
func readRun(r *bitio.Reader, n int, bound uint64, gc GapCode, dst []int32) ([]int32, error) {
	if n == 0 {
		return dst, nil
	}
	var cur int32
	if bound > 0 {
		v, err := coding.ReadMinimalBinary(r, bound)
		if err != nil {
			return dst, err
		}
		cur = int32(v)
	} else {
		v, err := coding.ReadGamma(r)
		if err != nil {
			return dst, err
		}
		cur = int32(v - 1)
	}
	dst = append(dst, cur)
	for i := 1; i < n; i++ {
		d, err := gc.read(r)
		if err != nil {
			return dst, err
		}
		if bound > 0 {
			// d spans the full uint64 range, so int64(d) can be negative
			// or wrap the sum past MaxInt64 (which lands negative, since
			// cur is non-negative); nv < 0 || nv >= bound rejects every
			// corrupt gap.
			nv := int64(cur) + int64(d)
			if nv < 0 || nv >= int64(bound) {
				return dst, fmt.Errorf("refenc: gap %d escapes run bound [0,%d)", d, bound)
			}
			cur = int32(nv)
		} else {
			cur += int32(d)
		}
		dst = append(dst, cur)
	}
	return dst, nil
}

func writeOneList(w *bitio.Writer, ref, list []int32, bound uint64, gc GapCode) {
	if ref == nil {
		coding.WriteGamma0(w, uint64(len(list)))
		writeRun(w, list, bound, gc)
		return
	}
	bits := make([]bool, len(ref))
	extras := make([]int32, len(list))
	_, nExtra, _, _ := refParts(ref, list, bits, extras, bound, gc)
	coding.WriteRLEBits(w, bits)
	coding.WriteGamma0(w, uint64(nExtra))
	writeRun(w, extras[:nExtra], bound, gc)
}

func readOneList(r *bitio.Reader, ref []int32, bound uint64, gc GapCode, dst []int32) ([]int32, error) {
	if ref == nil {
		deg, err := coding.ReadGamma0(r)
		if err != nil {
			return nil, err
		}
		return readRun(r, int(deg), bound, gc, dst[:0])
	}
	bits, err := coding.ReadRLEBits(r, len(ref), nil)
	if err != nil {
		return nil, err
	}
	nExtra, err := coding.ReadGamma0(r)
	if err != nil {
		return nil, err
	}
	extras, err := readRun(r, int(nExtra), bound, gc, nil)
	if err != nil {
		return nil, err
	}
	// Merge selected reference entries with extras (both sorted, and
	// disjoint by construction).
	out := dst[:0]
	ei := 0
	for i, b := range bits {
		if !b {
			continue
		}
		for ei < len(extras) && extras[ei] < ref[i] {
			out = append(out, extras[ei])
			ei++
		}
		out = append(out, ref[i])
	}
	for ; ei < len(extras); ei++ {
		out = append(out, extras[ei])
	}
	return out, nil
}

func encodeWindow(w *bitio.Writer, lists [][]int32, window int, bound uint64, gc GapCode) (Stats, error) {
	if window < 0 {
		window = 0
	}
	startBits := w.BitLen()
	var st Stats
	st.Lists = len(lists)
	for i, list := range lists {
		bestOff := 0
		bestCost := directCost(list, bound, gc)
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			// Referencing an empty list is never useful.
			if len(lists[j]) == 0 {
				continue
			}
			off := i - j
			c := coding.Gamma0Len(uint64(off)) + refCost(lists[j], list, bound, gc)
			if c < bestCost {
				bestCost = c
				bestOff = off
			}
		}
		coding.WriteGamma0(w, uint64(bestOff))
		if bestOff == 0 {
			writeOneList(w, nil, list, bound, gc)
		} else {
			writeOneList(w, lists[i-bestOff], list, bound, gc)
			st.Referenced++
		}
	}
	st.Bits = w.BitLen() - startBits + 3 // +3 header bits
	return st, nil
}

// DecodeLists reads m lists previously written by EncodeLists with no
// TargetBound.
func DecodeLists(r *bitio.Reader, m int) ([][]int32, error) {
	return DecodeListsBounded(r, m, 0)
}

// DecodeListsBounded reads m lists previously written by EncodeLists
// with the given TargetBound (0 = unbounded).
func DecodeListsBounded(r *bitio.Reader, m int, bound uint64) ([][]int32, error) {
	exact, err := r.ReadBool()
	if err != nil {
		return nil, err
	}
	gcBits, err := r.ReadBits(2)
	if err != nil {
		return nil, err
	}
	gc := GapCode(gcBits)
	if exact {
		return decodeExact(r, m, bound, gc)
	}
	lists := make([][]int32, m)
	for i := 0; i < m; i++ {
		off, err := coding.ReadGamma0(r)
		if err != nil {
			return nil, err
		}
		var ref []int32
		if off != 0 {
			j := i - int(off)
			if j < 0 {
				return nil, fmt.Errorf("refenc: list %d references out of range", i)
			}
			ref = lists[j]
		}
		lst, err := readOneList(r, ref, bound, gc, nil)
		if err != nil {
			return nil, err
		}
		lists[i] = lst
	}
	return lists, nil
}

// encodeExact builds the full affinity graph, solves the minimum
// arborescence, and writes lists in BFS order from the root with
// explicit node indices.
func encodeExact(w *bitio.Writer, lists [][]int32, bound uint64, gc GapCode) (Stats, error) {
	m := len(lists)
	var st Stats
	st.Lists = m
	startBits := w.BitLen()
	if m == 0 {
		st.Bits = w.BitLen() - startBits + 3
		return st, nil
	}
	// Affinity graph: vertex m is the root.
	root := m
	var edges []WEdge
	for y := 0; y < m; y++ {
		edges = append(edges, WEdge{From: root, To: y, W: float64(directCost(lists[y], bound, gc))})
		for x := 0; x < m; x++ {
			if x == y || len(lists[x]) == 0 {
				continue
			}
			edges = append(edges, WEdge{From: x, To: y, W: float64(refCost(lists[x], lists[y], bound, gc))})
		}
	}
	parentEdge, _, err := MinArborescence(m+1, root, edges)
	if err != nil {
		return st, err
	}
	parent := make([]int, m)
	children := make([][]int, m+1)
	for v := 0; v < m; v++ {
		p := edges[parentEdge[v]].From
		parent[v] = p
		children[p] = append(children[p], v)
	}
	// BFS from the root defines the storage order.
	order := make([]int, 0, m)
	posOf := make([]int, m)
	queue := append([]int(nil), children[root]...)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		posOf[v] = len(order)
		order = append(order, v)
		queue = append(queue, children[v]...)
	}
	if len(order) != m {
		return st, fmt.Errorf("refenc: arborescence does not span (%d of %d)", len(order), m)
	}
	for pos, v := range order {
		coding.WriteMinimalBinary(w, uint64(v), uint64(m))
		if parent[v] == root {
			coding.WriteGamma0(w, 0)
			writeOneList(w, nil, lists[v], bound, gc)
		} else {
			back := pos - posOf[parent[v]]
			coding.WriteGamma0(w, uint64(back))
			writeOneList(w, lists[parent[v]], lists[v], bound, gc)
			st.Referenced++
		}
	}
	st.Bits = w.BitLen() - startBits + 3
	return st, nil
}

func decodeExact(r *bitio.Reader, m int, bound uint64, gc GapCode) ([][]int32, error) {
	lists := make([][]int32, m)
	decodedByPos := make([][]int32, m)
	seen := make([]bool, m)
	for pos := 0; pos < m; pos++ {
		vi, err := coding.ReadMinimalBinary(r, uint64(m))
		if err != nil {
			return nil, err
		}
		v := int(vi)
		if seen[v] {
			return nil, fmt.Errorf("refenc: node %d decoded twice", v)
		}
		seen[v] = true
		back, err := coding.ReadGamma0(r)
		if err != nil {
			return nil, err
		}
		var ref []int32
		if back != 0 {
			p := pos - int(back)
			if p < 0 {
				return nil, fmt.Errorf("refenc: position %d references out of range", pos)
			}
			ref = decodedByPos[p]
		}
		lst, err := readOneList(r, ref, bound, gc, nil)
		if err != nil {
			return nil, err
		}
		decodedByPos[pos] = lst
		lists[v] = lst
	}
	return lists, nil
}
