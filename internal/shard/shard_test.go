package shard

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"snode/internal/iosim"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

var (
	testCrawl *synth.Crawl
	testRepo  *repo.Repository
	testRoots = map[int]string{}
)

func getCrawl(t testing.TB) *synth.Crawl {
	t.Helper()
	if testCrawl == nil {
		c, err := synth.Generate(synth.DefaultConfig(6000))
		if err != nil {
			t.Fatal(err)
		}
		testCrawl = c
	}
	return testCrawl
}

// getSingleNode builds the reference single-node repository.
func getSingleNode(t testing.TB) *repo.Repository {
	t.Helper()
	if testRepo != nil {
		return testRepo
	}
	crawl := getCrawl(t)
	dir, err := os.MkdirTemp("", "shard-ref-*")
	if err != nil {
		t.Fatal(err)
	}
	opt := repo.DefaultOptions(dir)
	opt.Schemes = []string{repo.SchemeSNode}
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	testRepo = r
	return r
}

// getRoot builds (once) a K-shard partition of the shared crawl.
func getRoot(t testing.TB, k int) string {
	t.Helper()
	if root, ok := testRoots[k]; ok {
		return root
	}
	crawl := getCrawl(t)
	root, err := os.MkdirTemp("", "shard-root-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(crawl, k, root, snode.DefaultConfig()); err != nil {
		t.Fatalf("Build K=%d: %v", k, err)
	}
	testRoots[k] = root
	return root
}

func openAll(t *testing.T, root string, k int) []*ServingShard {
	t.Helper()
	shards := make([]*ServingShard, k)
	for i := 0; i < k; i++ {
		s, err := OpenServing(root, i, 16<<20, iosim.Model2002())
		if err != nil {
			t.Fatalf("OpenServing %d: %v", i, err)
		}
		t.Cleanup(func() { s.Close() })
		shards[i] = s
	}
	return shards
}

func TestAssignCoversAndBalances(t *testing.T) {
	crawl := getCrawl(t)
	pages := crawl.Corpus.Pages
	for _, k := range []int{1, 2, 4, 7} {
		runs, err := Assign(pages, k)
		if err != nil {
			t.Fatal(err)
		}
		load := make([]int, k)
		covered := 0
		for _, r := range runs {
			if int(r.Start) != covered {
				t.Fatalf("K=%d: run starts at %d, want %d", k, r.Start, covered)
			}
			covered += int(r.Count)
			load[r.Shard] += int(r.Count)
			// Whole domains only: a run boundary never splits a domain.
			if covered < len(pages) && pages[covered-1].Domain == pages[covered].Domain {
				t.Fatalf("K=%d: run boundary at %d splits domain %q", k, covered, pages[covered].Domain)
			}
		}
		if covered != len(pages) {
			t.Fatalf("K=%d: runs cover %d of %d pages", k, covered, len(pages))
		}
		min, max := load[0], load[0]
		for _, l := range load[1:] {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		// Greedy LPT bound: domains are indivisible, so the spread can
		// never beat the largest domain, but it must not exceed it.
		largest := 0
		for i := 0; i < len(pages); {
			j := i
			for j < len(pages) && pages[j].Domain == pages[i].Domain {
				j++
			}
			if j-i > largest {
				largest = j - i
			}
			i = j
		}
		if k > 1 && max-min > largest {
			t.Errorf("K=%d: shard loads %v spread %d exceeds largest domain %d",
				k, load, max-min, largest)
		}
	}
}

func TestBoundaryRoundTrip(t *testing.T) {
	adj := map[webgraph.PageID][]webgraph.PageID{
		0:    {5, 9, 1000},
		7:    {2},
		4242: {0, 1, 2, 4243},
	}
	path := filepath.Join(t.TempDir(), "b.fwd")
	if err := WriteBoundary(path, adj); err != nil {
		t.Fatal(err)
	}
	b, err := OpenBoundary(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumEdges() != 8 || b.NumSources() != 3 {
		t.Fatalf("edges %d sources %d, want 8/3", b.NumEdges(), b.NumSources())
	}
	for src, want := range adj {
		got := b.Out(src)
		if len(got) != len(want) {
			t.Fatalf("src %d: %v, want %v", src, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("src %d: %v, want %v", src, got, want)
			}
		}
	}
	if b.Out(12345) != nil {
		t.Fatal("unknown source returned edges")
	}
}

func TestManifestRoundTripAndShardOf(t *testing.T) {
	root := getRoot(t, 4)
	m, err := LoadManifest(root)
	if err != nil {
		t.Fatal(err)
	}
	crawl := getCrawl(t)
	pages := crawl.Corpus.Pages
	for p := 0; p < len(pages); p++ {
		s := m.ShardOf(webgraph.PageID(p))
		if s < 0 || s >= m.NumShards {
			t.Fatalf("page %d: shard %d", p, s)
		}
		if p > 0 && pages[p-1].Domain == pages[p].Domain &&
			s != m.ShardOf(webgraph.PageID(p-1)) {
			t.Fatalf("domain %q split across shards at page %d", pages[p].Domain, p)
		}
	}
	if m.ShardOf(-1) != -1 || m.ShardOf(webgraph.PageID(len(pages))) != -1 {
		t.Fatal("out-of-range pages resolved to a shard")
	}
	// Tampering with contents must invalidate the stamp.
	m.Shards[0].IntraEdges++
	if m.Version == m.stamp() {
		t.Fatal("version stamp did not change with contents")
	}
}

// TestMergedAdjacencyMatchesFullGraph is the core shard invariant: for
// every page, the owning shard's merged store (intra S-Node + fwd
// boundary) returns exactly the full graph's adjacency, and the rev
// merged store exactly the transpose's.
func TestMergedAdjacencyMatchesFullGraph(t *testing.T) {
	crawl := getCrawl(t)
	g := crawl.Corpus.Graph
	gt := g.Transpose()
	for _, k := range []int{2, 4} {
		shards := openAll(t, getRoot(t, k), k)
		m := shards[0].Manifest
		intraEdges, boundaryEdges := int64(0), int64(0)
		for _, e := range m.Shards {
			intraEdges += e.IntraEdges
			boundaryEdges += e.BoundaryFwdEdges
		}
		if intraEdges+boundaryEdges != g.NumEdges() {
			t.Fatalf("K=%d: %d intra + %d boundary != %d total edges",
				k, intraEdges, boundaryEdges, g.NumEdges())
		}
		for p := webgraph.PageID(0); int(p) < g.NumPages(); p++ {
			sh := shards[m.ShardOf(p)]
			for dir, pair := range map[string]struct {
				st interface {
					Out(webgraph.PageID, []webgraph.PageID) ([]webgraph.PageID, error)
				}
				want []webgraph.PageID
			}{
				"fwd": {sh.Repo.Fwd[repo.SchemeSNode], g.Out(p)},
				"rev": {sh.Repo.Rev[repo.SchemeSNode], gt.Out(p)},
			} {
				got, err := pair.st.Out(p, nil)
				if err != nil {
					t.Fatalf("K=%d %s Out(%d): %v", k, dir, p, err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(pair.want) {
					t.Fatalf("K=%d %s page %d: %d edges, want %d", k, dir, p, len(got), len(pair.want))
				}
				for i := range pair.want {
					if got[i] != pair.want[i] {
						t.Fatalf("K=%d %s page %d edge %d: %d, want %d", k, dir, p, i, got[i], pair.want[i])
					}
				}
			}
		}
	}
}

// TestShardedQueriesMatchSingleNode is the in-process golden test: all
// six Table 3 queries, executed as owned-restricted partials on each
// opened shard and merged, must reproduce the single-node rows (the
// HTTP-level twin lives in internal/router).
func TestShardedQueriesMatchSingleNode(t *testing.T) {
	ref := getSingleNode(t)
	refEng, err := query.New(ref, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		shards := openAll(t, getRoot(t, k), k)
		engines := make([]*query.Engine, k)
		for i, sh := range shards {
			e, err := query.New(sh.Repo, repo.SchemeSNode)
			if err != nil {
				t.Fatal(err)
			}
			e.SetOwner(sh.Owns)
			engines[i] = e
		}
		for _, q := range query.All() {
			want, err := refEng.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("single-node Q%d: %v", q, err)
			}
			var parts [][]query.PartialRow
			for i, e := range engines {
				p, err := e.RunPartial(context.Background(), q)
				if err != nil {
					t.Fatalf("K=%d shard %d Q%d: %v", k, i, q, err)
				}
				parts = append(parts, p.Rows)
			}
			got := query.MergePartials(q, parts)
			if len(got) != len(want.Rows) {
				t.Fatalf("K=%d Q%d: %d merged rows, want %d\n got: %v\nwant: %v",
					k, q, len(got), len(want.Rows), got, want.Rows)
			}
			for i := range want.Rows {
				if got[i].Key != want.Rows[i].Key {
					t.Fatalf("K=%d Q%d row %d: key %q, want %q", k, q, i, got[i].Key, want.Rows[i].Key)
				}
				if diff := math.Abs(got[i].Value - want.Rows[i].Value); diff > 1e-9*math.Max(1, math.Abs(want.Rows[i].Value)) {
					t.Fatalf("K=%d Q%d row %d (%s): value %v, want %v",
						k, q, i, got[i].Key, got[i].Value, want.Rows[i].Value)
				}
			}
		}
	}
}

// TestShardBuildCarriesCodec pins that a non-default codec flows
// through the sharded build: every per-shard S-Node store records the
// requested codec in its meta, and the stores stay row-identical to a
// default-codec sharded build of the same crawl.
func TestShardBuildCarriesCodec(t *testing.T) {
	const k = 3
	crawl, err := synth.Generate(synth.DefaultConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	build := func(codec string) string {
		root, err := os.MkdirTemp("", "shard-codec-*")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(root) })
		cfg := snode.DefaultConfig()
		cfg.Codec = codec
		if _, err := Build(crawl, k, root, cfg); err != nil {
			t.Fatalf("Build codec=%q: %v", codec, err)
		}
		return root
	}
	paperRoot := build("")
	lzRoot := build("lz")

	for s := 0; s < k; s++ {
		for _, sub := range []string{"snode.fwd", "snode.rev"} {
			lzDir := filepath.Join(lzRoot, "shard-"+strconv.Itoa(s), sub)
			lzRep, err := snode.Open(lzDir, 1<<20, iosim.Model2002())
			if err != nil {
				t.Fatalf("shard %d %s: %v", s, sub, err)
			}
			cs := lzRep.Codecs()
			if len(cs) != 1 || cs[0].Name != "lz" {
				t.Fatalf("shard %d %s: codec composition %+v, want pure lz", s, sub, cs)
			}

			paperRep, err := snode.Open(
				filepath.Join(paperRoot, "shard-"+strconv.Itoa(s), sub), 1<<20, iosim.Model2002())
			if err != nil {
				t.Fatal(err)
			}
			want, err := paperRep.DecodeAll()
			if err != nil {
				t.Fatal(err)
			}
			got, err := lzRep.DecodeAll()
			if err != nil {
				t.Fatalf("shard %d %s decode: %v", s, sub, err)
			}
			for p := int32(0); p < int32(lzRep.NumPages()); p++ {
				a, b := want.Out(p), got.Out(p)
				if len(a) != len(b) {
					t.Fatalf("shard %d %s page %d: %d vs %d edges", s, sub, p, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("shard %d %s page %d edge %d differs", s, sub, p, i)
					}
				}
			}
			paperRep.Close()
			lzRep.Close()
		}
	}
}
