package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"snode/internal/webgraph"
)

// ManifestFormatVersion guards the manifest layout; readers reject
// other versions instead of misparsing.
const ManifestFormatVersion = 1

// ManifestName is the manifest's file name under the shard root.
const ManifestName = "manifest.json"

// Root-level artifact names.
const (
	metaName     = "meta.bin"     // page metadata corpus (edge-free)
	pageRankName = "pagerank.bin" // global normalized PageRank
)

// ShardEntry describes one shard's artifacts, relative to the root.
type ShardEntry struct {
	// Dir holds the shard's S-Node stores: Dir/snode.fwd and
	// Dir/snode.rev, each an ordinary snode.Open directory over the
	// intra-shard subgraph under global page IDs.
	Dir string `json:"dir"`
	// Pages is the number of pages this shard owns.
	Pages int `json:"pages"`
	// IntraEdges counts edges with both endpoints owned.
	IntraEdges int64 `json:"intra_edges"`
	// BoundaryFwd / BoundaryRev are the cross-shard edge files (owned
	// source → remote target, owned target ← remote source) and their
	// edge counts.
	BoundaryFwd      string `json:"boundary_fwd"`
	BoundaryRev      string `json:"boundary_rev"`
	BoundaryFwdEdges int64  `json:"boundary_fwd_edges"`
	BoundaryRevEdges int64  `json:"boundary_rev_edges"`
}

// Manifest is the versioned description of one partitioned corpus: the
// page→shard assignment and where every artifact lives. Routers and
// shard servers both load it; the Version field is how they detect
// build/serve skew (a replica built under a different partition).
type Manifest struct {
	FormatVersion int `json:"format_version"`
	// Version is a content hash of the assignment and per-shard edge
	// counts — two manifests with equal Version describe interchangeable
	// artifact sets.
	Version   string       `json:"version"`
	NumPages  int          `json:"num_pages"`
	NumShards int          `json:"num_shards"`
	Runs      []Run        `json:"runs"`
	Shards    []ShardEntry `json:"shards"`
	Meta      string       `json:"meta"`
	PageRank  string       `json:"pagerank"`
}

// ShardOf resolves the shard owning page p (-1 if p is out of range).
func (m *Manifest) ShardOf(p webgraph.PageID) int {
	if p < 0 || int(p) >= m.NumPages {
		return -1
	}
	i := sort.Search(len(m.Runs), func(i int) bool { return m.Runs[i].Start > p }) - 1
	if i < 0 {
		return -1
	}
	r := m.Runs[i]
	if p >= r.Start+webgraph.PageID(r.Count) {
		return -1
	}
	return r.Shard
}

// stamp computes the content-hash Version.
func (m *Manifest) stamp() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d n%d k%d;", m.FormatVersion, m.NumPages, m.NumShards)
	for _, r := range m.Runs {
		fmt.Fprintf(h, "r%d+%d=%d;", r.Start, r.Count, r.Shard)
	}
	for i, s := range m.Shards {
		fmt.Fprintf(h, "s%d:%d/%d/%d/%d;", i, s.Pages, s.IntraEdges, s.BoundaryFwdEdges, s.BoundaryRevEdges)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Save stamps the Version and writes the manifest under root.
func (m *Manifest) Save(root string) error {
	m.FormatVersion = ManifestFormatVersion
	m.Version = m.stamp()
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(root, ManifestName), append(buf, '\n'), 0o644)
}

// LoadManifest reads and validates the manifest under root.
func LoadManifest(root string) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(root, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %w", err)
	}
	if m.FormatVersion != ManifestFormatVersion {
		return nil, fmt.Errorf("shard: manifest format %d, want %d", m.FormatVersion, ManifestFormatVersion)
	}
	if want := m.stamp(); m.Version != want {
		return nil, fmt.Errorf("shard: manifest version %q does not match contents (%q)", m.Version, want)
	}
	if m.NumShards != len(m.Shards) {
		return nil, fmt.Errorf("shard: manifest lists %d shards, declares %d", len(m.Shards), m.NumShards)
	}
	covered := 0
	for i, r := range m.Runs {
		if r.Shard < 0 || r.Shard >= m.NumShards {
			return nil, fmt.Errorf("shard: run %d assigned to shard %d of %d", i, r.Shard, m.NumShards)
		}
		if int(r.Start) != covered {
			return nil, fmt.Errorf("shard: run %d starts at %d, want %d (gap/overlap)", i, r.Start, covered)
		}
		covered += int(r.Count)
	}
	if covered != m.NumPages {
		return nil, fmt.Errorf("shard: runs cover %d pages of %d", covered, m.NumPages)
	}
	return &m, nil
}
