package shard

import (
	"context"
	"time"

	"snode/internal/store"
	"snode/internal/webgraph"
)

// MergedStore overlays a shard's boundary edges on its S-Node base
// store, so navigation from an OWNED page sees the page's complete
// adjacency: the intra-shard part from the compressed representation,
// the cross-shard part from the in-memory boundary map. The shard's
// mining engine runs over two of these (fwd and rev), which is what
// makes its partial-query results exact.
//
// The overlay is free of duplicates by construction — an edge is intra
// or boundary, never both — and costs no modeled I/O (the boundary map
// is resident, like the domain and page-ID indexes the §4 setup keeps
// in memory for every scheme). Serving knobs (cache reset, pacing,
// hedging) and stats pass through to the base store.
type MergedStore struct {
	base     store.LinkStore
	baseCtx  store.ContextLinkStore // non-nil when base provides it
	boundary *Boundary
	domains  store.DomainRanges
	domainOf func(webgraph.PageID) string
}

// NewMergedStore overlays boundary on base. domains/domainOf supply
// the metadata OutFiltered needs to filter boundary targets the same
// way the base store filters decoded lists.
func NewMergedStore(base store.LinkStore, b *Boundary, domains store.DomainRanges, domainOf func(webgraph.PageID) string) *MergedStore {
	m := &MergedStore{base: base, boundary: b, domains: domains, domainOf: domainOf}
	m.baseCtx, _ = base.(store.ContextLinkStore)
	return m
}

// Name returns the base scheme's name.
func (m *MergedStore) Name() string { return m.base.Name() }

// NumPages reports the base store's page count (global ID space).
func (m *MergedStore) NumPages() int { return m.base.NumPages() }

// appendBoundary adds p's boundary targets passing f to buf.
func (m *MergedStore) appendBoundary(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) []webgraph.PageID {
	for _, t := range m.boundary.Out(p) {
		if store.FilterAccepts(f, t, m.domains, m.domainOf) {
			buf = append(buf, t)
		}
	}
	return buf
}

// Out appends p's complete adjacency: intra from the base store, then
// cross-shard from the boundary.
func (m *MergedStore) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	buf, err := m.base.Out(p, buf)
	if err != nil {
		return buf, err
	}
	return append(buf, m.boundary.Out(p)...), nil
}

// OutFiltered applies f to both halves.
func (m *MergedStore) OutFiltered(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	buf, err := m.base.OutFiltered(p, f, buf)
	if err != nil {
		return buf, err
	}
	return m.appendBoundary(p, f, buf), nil
}

// OutFilteredCtx is the context-aware read path: the base access
// carries ctx (traces, cancellation) when the base store supports it.
func (m *MergedStore) OutFilteredCtx(ctx context.Context, p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	var err error
	if m.baseCtx != nil {
		buf, err = m.baseCtx.OutFilteredCtx(ctx, p, f, buf)
	} else if f == nil {
		buf, err = m.base.Out(p, buf)
	} else {
		buf, err = m.base.OutFiltered(p, f, buf)
	}
	if err != nil {
		return buf, err
	}
	return m.appendBoundary(p, f, buf), nil
}

// Stats reports the base store's access statistics (boundary reads are
// resident-memory lookups, like the in-memory indexes: no modeled I/O).
func (m *MergedStore) Stats() store.AccessStats { return m.base.Stats() }

// ResetStats zeroes the base store's statistics.
func (m *MergedStore) ResetStats() { m.base.ResetStats() }

// Close closes the base store.
func (m *MergedStore) Close() error { return m.base.Close() }

// ResetCache forwards to the base store when it supports it.
func (m *MergedStore) ResetCache(budget int64) {
	if c, ok := m.base.(store.CacheResetter); ok {
		c.ResetCache(budget)
	}
}

// SetPace forwards to the base store when it supports it.
func (m *MergedStore) SetPace(scale float64) {
	if p, ok := m.base.(store.Pacer); ok {
		p.SetPace(scale)
	}
}

// SetHedge forwards to the base store when it supports it.
func (m *MergedStore) SetHedge(after time.Duration) {
	if h, ok := m.base.(store.Hedger); ok {
		h.SetHedge(after)
	}
}

// SizeBytes reports the base representation size plus the boundary
// store's resident footprint (8 bytes per entry key + 4 per edge).
func (m *MergedStore) SizeBytes() int64 {
	var n int64
	if s, ok := m.base.(store.Sized); ok {
		n = s.SizeBytes()
	}
	return n + int64(m.boundary.NumSources())*8 + m.boundary.NumEdges()*4
}
