package shard

import (
	"fmt"
	"path/filepath"

	"snode/internal/corpusio"
	"snode/internal/iosim"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/textindex"
	"snode/internal/webgraph"
)

// ServingShard is one opened shard, ready to serve: a boundary-merged
// repository for the mining engine (complete adjacency for owned
// pages), an intra-only repository for /out (the router resolves
// cross-shard /out edges itself, from the boundary files), and the
// ownership predicate the partial-query engine restricts to.
type ServingShard struct {
	ID       int
	Manifest *Manifest
	// Repo serves the mining engine: S-Node stores overlaid with this
	// shard's fwd and rev boundaries, global text index, global
	// PageRank, global domain index.
	Repo *repo.Repository
	// NavRepo shares every index with Repo but keeps the bare
	// intra-shard stores: /out answers with the edges this shard owns
	// and the router appends the cross-shard rest.
	NavRepo *repo.Repository
}

// Owns reports whether this shard owns page p.
func (s *ServingShard) Owns(p webgraph.PageID) bool {
	return s.Manifest.ShardOf(p) == s.ID
}

// Close releases the shard's stores (base stores are shared between
// Repo and NavRepo and closed once, via Repo).
func (s *ServingShard) Close() error { return s.Repo.Close() }

// OpenServing opens shard id under root: global metadata and PageRank
// from the root artifacts, S-Node stores from the shard directory,
// boundaries overlaid. The result's indexes are bit-identical to a
// single-node repository over the same crawl — that is what makes the
// router's merged answers row-identical.
func OpenServing(root string, id int, cacheBudget int64, model iosim.Model) (*ServingShard, error) {
	m, err := LoadManifest(root)
	if err != nil {
		return nil, err
	}
	if id < 0 || id >= m.NumShards {
		return nil, fmt.Errorf("shard: id %d out of range [0,%d)", id, m.NumShards)
	}
	meta, err := corpusio.Read(filepath.Join(root, m.Meta))
	if err != nil {
		return nil, err
	}
	pages := meta.Corpus.Pages
	if len(pages) != m.NumPages {
		return nil, fmt.Errorf("shard: metadata has %d pages, manifest %d", len(pages), m.NumPages)
	}
	pr, err := readPageRank(filepath.Join(root, m.PageRank))
	if err != nil {
		return nil, err
	}
	if len(pr) != m.NumPages {
		return nil, fmt.Errorf("shard: pagerank has %d entries, manifest %d pages", len(pr), m.NumPages)
	}
	entry := m.Shards[id]
	fwdBase, err := snode.Open(filepath.Join(root, entry.Dir, "snode.fwd"), cacheBudget, model)
	if err != nil {
		return nil, err
	}
	revBase, err := snode.Open(filepath.Join(root, entry.Dir, "snode.rev"), cacheBudget, model)
	if err != nil {
		fwdBase.Close()
		return nil, err
	}
	bfwd, err := OpenBoundary(filepath.Join(root, entry.BoundaryFwd))
	if err != nil {
		fwdBase.Close()
		revBase.Close()
		return nil, err
	}
	brev, err := OpenBoundary(filepath.Join(root, entry.BoundaryRev))
	if err != nil {
		fwdBase.Close()
		revBase.Close()
		return nil, err
	}
	domains := store.NewDomainRanges(pages)
	domainOf := func(p webgraph.PageID) string { return pages[p].Domain }
	merged := &repo.Repository{
		Corpus:   meta.Corpus,
		Text:     textindex.Build(pages),
		PageRank: pr,
		Domains:  domains,
		Model:    model,
		Fwd:      map[string]store.LinkStore{repo.SchemeSNode: NewMergedStore(fwdBase, bfwd, domains, domainOf)},
		Rev:      map[string]store.LinkStore{repo.SchemeSNode: NewMergedStore(revBase, brev, domains, domainOf)},
	}
	nav := &repo.Repository{
		Corpus:   merged.Corpus,
		Text:     merged.Text,
		PageRank: merged.PageRank,
		Domains:  merged.Domains,
		Model:    model,
		Fwd:      map[string]store.LinkStore{repo.SchemeSNode: fwdBase},
		Rev:      map[string]store.LinkStore{repo.SchemeSNode: revBase},
	}
	return &ServingShard{ID: id, Manifest: m, Repo: merged, NavRepo: nav}, nil
}

// LoadFwdBoundaries loads every shard's forward boundary store — the
// router's side of the split: it resolves cross-shard /out edges
// itself instead of asking another shard.
func LoadFwdBoundaries(root string, m *Manifest) ([]*Boundary, error) {
	out := make([]*Boundary, m.NumShards)
	for i, e := range m.Shards {
		b, err := OpenBoundary(filepath.Join(root, e.BoundaryFwd))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
