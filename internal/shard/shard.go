// Package shard partitions an S-Node corpus by domain into K
// independently servable shards plus a small boundary store for
// cross-shard edges — the distributed serving tier's build side.
//
// The paper's locality argument (§3: roughly three quarters of links
// stay inside their domain) is what makes this split cheap: partition
// on whole domains and the cross-shard edge fraction stays small, so
// each shard's S-Node stores hold almost all the structure its queries
// touch, and the leftover cross-shard edges fit a compact side store.
//
// The partitioning scheme replicates the SMALL global state and
// partitions the BIG state:
//
//   - Every shard keeps the full page metadata (URLs, domains, terms),
//     under global page IDs, and rebuilds the global text index and
//     domain index from it — these are the paper's un-timed basic
//     indexes, tiny next to the link structure.
//   - Global PageRank is computed once over the full graph at
//     partition time and persisted; every shard serves with the same
//     vector, so rank-dependent queries resolve identically anywhere.
//   - The link structure is partitioned: shard k's S-Node stores hold
//     the intra-shard edges (source AND target owned by k), and two
//     boundary stores per shard hold the rest — fwd: owned source →
//     remote target, rev: owned target ← remote source.
//
// A shard serving with its S-Node store overlaid by its own boundary
// stores (MergedStore) sees the complete adjacency of every page it
// owns, in both directions — which is exactly the invariant the
// partial-query decomposition (internal/query/partial.go) and the
// scatter-gather router (internal/router) are built on.
package shard

import (
	"fmt"
	"sort"

	"snode/internal/webgraph"
)

// Run is a maximal contiguous page-ID interval assigned to one shard.
// Domains are contiguous in page-ID order (the crawl assigns IDs in
// (domain, URL) order), so a whole-domain partition is a short run
// list.
type Run struct {
	Start webgraph.PageID `json:"start"`
	Count int32           `json:"count"`
	Shard int             `json:"shard"`
}

// Assign partitions the pages' domains over k shards: domains are
// taken largest-first (ties lexicographically) and each goes to the
// currently lightest shard (ties to the lowest shard index) — the
// classic greedy multiway number partitioning, deterministic for a
// fixed corpus. Returns the assignment as merged page-ID runs in page
// order.
func Assign(pages []webgraph.PageMeta, k int) ([]Run, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: shard count %d, want >= 1", k)
	}
	if len(pages) == 0 {
		return nil, fmt.Errorf("shard: empty corpus")
	}
	type domain struct {
		name  string
		lo    webgraph.PageID
		count int32
	}
	var domains []domain
	for i := 0; i < len(pages); {
		j := i
		for j < len(pages) && pages[j].Domain == pages[i].Domain {
			j++
		}
		domains = append(domains, domain{
			name:  pages[i].Domain,
			lo:    webgraph.PageID(i),
			count: int32(j - i),
		})
		i = j
	}
	order := make([]int, len(domains))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := domains[order[a]], domains[order[b]]
		if da.count != db.count {
			return da.count > db.count
		}
		return da.name < db.name
	})
	load := make([]int64, k)
	shardOfDomain := make([]int, len(domains))
	for _, di := range order {
		lightest := 0
		for s := 1; s < k; s++ {
			if load[s] < load[lightest] {
				lightest = s
			}
		}
		shardOfDomain[di] = lightest
		load[lightest] += int64(domains[di].count)
	}
	var runs []Run
	for di, d := range domains {
		s := shardOfDomain[di]
		if n := len(runs); n > 0 && runs[n-1].Shard == s &&
			runs[n-1].Start+webgraph.PageID(runs[n-1].Count) == d.lo {
			runs[n-1].Count += d.count
			continue
		}
		runs = append(runs, Run{Start: d.lo, Count: d.count, Shard: s})
	}
	return runs, nil
}
