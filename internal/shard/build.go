package shard

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"snode/internal/corpusio"
	"snode/internal/pagerank"
	"snode/internal/snode"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// Build partitions a crawl into k shards under root:
//
//	root/manifest.json       page→shard assignment + artifact index
//	root/meta.bin            full page metadata, edge-free (replicated state)
//	root/pagerank.bin        global normalized PageRank
//	root/shard-<i>/snode.fwd S-Node over shard i's intra edges
//	root/shard-<i>/snode.rev S-Node over the intra transpose
//	root/shard-<i>/boundary.{fwd,rev} cross-shard edges
//
// Every artifact uses GLOBAL page IDs, so a shard, its boundary
// overlay, and the router all speak the same ID space as a single-node
// build of the same crawl.
func Build(crawl *synth.Crawl, k int, root string, cfg snode.Config) (*Manifest, error) {
	c := crawl.Corpus
	if err := c.Validate(); err != nil {
		return nil, err
	}
	runs, err := Assign(c.Pages, k)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{
		NumPages:  len(c.Pages),
		NumShards: k,
		Runs:      runs,
		Meta:      metaName,
		PageRank:  pageRankName,
	}
	n := c.Graph.NumPages()
	shardOf := make([]int, n)
	for _, r := range runs {
		for p := r.Start; p < r.Start+webgraph.PageID(r.Count); p++ {
			shardOf[p] = r.Shard
		}
	}

	// Replicated global state: edge-free metadata corpus + PageRank
	// computed once over the FULL graph, so every shard ranks pages
	// exactly as a single-node repository would.
	emptyGraph, err := webgraph.NewGraphCSR(make([]int64, n+1), nil)
	if err != nil {
		return nil, err
	}
	metaCrawl := &synth.Crawl{
		Corpus: &webgraph.Corpus{Graph: emptyGraph, Pages: c.Pages},
		Order:  crawl.Order,
	}
	if err := corpusio.Write(metaCrawl, filepath.Join(root, metaName)); err != nil {
		return nil, err
	}
	pr := pagerank.Normalize(pagerank.Compute(c.Graph, pagerank.DefaultConfig()))
	if err := writePageRank(filepath.Join(root, pageRankName), pr); err != nil {
		return nil, err
	}

	for s := 0; s < k; s++ {
		entry, err := buildShard(c, crawl.Order, shardOf, s, root, cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		m.Shards = append(m.Shards, *entry)
	}
	if err := m.Save(root); err != nil {
		return nil, err
	}
	return m, nil
}

// buildShard emits shard s's S-Node stores and boundary files.
func buildShard(c *webgraph.Corpus, order []int32, shardOf []int, s int, root string, cfg snode.Config) (*ShardEntry, error) {
	dir := fmt.Sprintf("shard-%d", s)
	abs := filepath.Join(root, dir)
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, err
	}
	n := c.Graph.NumPages()
	intra := webgraph.NewBuilder(n)
	bfwd := map[webgraph.PageID][]webgraph.PageID{}
	brev := map[webgraph.PageID][]webgraph.PageID{}
	pages := 0
	for p := webgraph.PageID(0); p < webgraph.PageID(n); p++ {
		srcOwned := shardOf[p] == s
		if srcOwned {
			pages++
		}
		for _, q := range c.Graph.Out(p) {
			dstOwned := shardOf[q] == s
			switch {
			case srcOwned && dstOwned:
				intra.AddEdge(p, q)
			case srcOwned:
				bfwd[p] = append(bfwd[p], q)
			case dstOwned:
				// Visiting sources ascending keeps each rev list sorted.
				brev[q] = append(brev[q], p)
			}
		}
	}
	ig := intra.Build()
	for _, sub := range []string{"snode.fwd", "snode.rev"} {
		if err := os.MkdirAll(filepath.Join(abs, sub), 0o755); err != nil {
			return nil, err
		}
	}
	intraCorpus := &webgraph.Corpus{Graph: ig, Pages: c.Pages}
	if _, err := snode.Build(intraCorpus, cfg, filepath.Join(abs, "snode.fwd")); err != nil {
		return nil, err
	}
	revCorpus := &webgraph.Corpus{Graph: ig.Transpose(), Pages: c.Pages}
	if _, err := snode.Build(revCorpus, cfg, filepath.Join(abs, "snode.rev")); err != nil {
		return nil, err
	}
	entry := &ShardEntry{
		Dir:         dir,
		Pages:       pages,
		IntraEdges:  ig.NumEdges(),
		BoundaryFwd: filepath.Join(dir, "boundary.fwd"),
		BoundaryRev: filepath.Join(dir, "boundary.rev"),
	}
	if err := WriteBoundary(filepath.Join(root, entry.BoundaryFwd), bfwd); err != nil {
		return nil, err
	}
	if err := WriteBoundary(filepath.Join(root, entry.BoundaryRev), brev); err != nil {
		return nil, err
	}
	entry.BoundaryFwdEdges = NewBoundary(bfwd).NumEdges()
	entry.BoundaryRevEdges = NewBoundary(brev).NumEdges()
	return entry, nil
}

// writePageRank persists the normalized rank vector: uvarint length,
// then 8 little-endian bytes per page.
func writePageRank(path string, pr []float64) error {
	buf := make([]byte, binary.MaxVarintLen64+8*len(pr))
	n := binary.PutUvarint(buf, uint64(len(pr)))
	for _, v := range pr {
		binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(v))
		n += 8
	}
	return os.WriteFile(path, buf[:n], 0o644)
}

// readPageRank loads a vector written by writePageRank.
func readPageRank(path string) ([]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ln, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) != 8*ln {
		return nil, fmt.Errorf("shard: %s: malformed pagerank file", path)
	}
	pr := make([]float64, ln)
	for i := range pr {
		pr[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[n:]))
		n += 8
	}
	return pr, nil
}
