package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"snode/internal/webgraph"
)

// boundaryMagic / boundaryVersion head every boundary file.
const (
	boundaryMagic   = "SNBD"
	boundaryVersion = 1
)

// Boundary is a shard's cross-shard edge store: a sparse adjacency map
// over GLOBAL page IDs, loaded fully in memory (the locality argument
// is precisely that this stays small — a few percent of the edges).
// For a fwd boundary the keys are owned sources and the values remote
// targets; for a rev boundary the keys are owned targets and the
// values remote sources. Lists are sorted ascending and duplicate-free.
// Safe for concurrent readers after Open/NewBoundary.
type Boundary struct {
	adj   map[webgraph.PageID][]webgraph.PageID
	edges int64
}

// NewBoundary wraps an adjacency map (retained, not copied); each list
// must be sorted ascending without duplicates.
func NewBoundary(adj map[webgraph.PageID][]webgraph.PageID) *Boundary {
	b := &Boundary{adj: adj}
	for _, l := range adj {
		b.edges += int64(len(l))
	}
	return b
}

// Out returns p's boundary adjacency (nil when p has no cross-shard
// edges). The slice aliases the store and must not be modified.
func (b *Boundary) Out(p webgraph.PageID) []webgraph.PageID { return b.adj[p] }

// NumEdges reports the total cross-shard edge count.
func (b *Boundary) NumEdges() int64 { return b.edges }

// NumSources reports how many pages have at least one boundary edge.
func (b *Boundary) NumSources() int { return len(b.adj) }

// WriteBoundary serializes the store: magic, version, source count,
// then per source (ascending) a gap-coded source ID, degree, and
// gap-coded target list — the same uvarint+gap idiom as corpusio.
func WriteBoundary(path string, adj map[webgraph.PageID][]webgraph.PageID) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(boundaryMagic); err != nil {
		f.Close()
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	srcs := make([]webgraph.PageID, 0, len(adj))
	for p := range adj {
		srcs = append(srcs, p)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	if err := put(boundaryVersion); err != nil {
		f.Close()
		return err
	}
	if err := put(uint64(len(srcs))); err != nil {
		f.Close()
		return err
	}
	prevSrc := int64(-1)
	for _, p := range srcs {
		if err := put(uint64(int64(p) - prevSrc)); err != nil {
			f.Close()
			return err
		}
		prevSrc = int64(p)
		lst := adj[p]
		if err := put(uint64(len(lst))); err != nil {
			f.Close()
			return err
		}
		prevT := int64(-1)
		for _, t := range lst {
			if err := put(uint64(int64(t) - prevT)); err != nil {
				f.Close()
				return err
			}
			prevT = int64(t)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenBoundary loads a store written by WriteBoundary.
func OpenBoundary(path string) (*Boundary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(boundaryMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != boundaryMagic {
		return nil, fmt.Errorf("shard: %s: not a boundary file", path)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(r) }
	ver, err := get()
	if err != nil || ver != boundaryVersion {
		return nil, fmt.Errorf("shard: %s: boundary format %d, want %d", path, ver, boundaryVersion)
	}
	nsrc, err := get()
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	adj := make(map[webgraph.PageID][]webgraph.PageID, nsrc)
	prevSrc := int64(-1)
	for i := uint64(0); i < nsrc; i++ {
		d, err := get()
		if err != nil {
			return nil, fmt.Errorf("shard: %s: truncated source %d: %w", path, i, err)
		}
		src := prevSrc + int64(d)
		prevSrc = src
		deg, err := get()
		if err != nil {
			return nil, fmt.Errorf("shard: %s: %w", path, err)
		}
		lst := make([]webgraph.PageID, deg)
		prevT := int64(-1)
		for j := range lst {
			d, err := get()
			if err != nil {
				return nil, fmt.Errorf("shard: %s: truncated list at source %d: %w", path, src, err)
			}
			prevT += int64(d)
			lst[j] = webgraph.PageID(prevT)
		}
		adj[webgraph.PageID(src)] = lst
	}
	return NewBoundary(adj), nil
}
