package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"snode/internal/metrics"
)

func navObjective() Objective {
	return Objective{
		Class:        "nav",
		TotalCounter: "router_nav_requests",
		BadCounters:  []string{"router_nav_shed", "router_nav_errors"},
		LatencyHist:  "router_latency_nav",
		Availability: 0.999,
		P99:          100 * time.Millisecond,
	}
}

// drive applies traffic to a registry: ok requests at okLat, bad
// requests counted as sheds (still observed in the histogram, at the
// deadline they burned).
func drive(reg *metrics.Registry, ok, bad int, okLat, badLat time.Duration) {
	total := reg.Counter("router_nav_requests")
	shed := reg.Counter("router_nav_shed")
	h := reg.Histogram("router_latency_nav", nil)
	for i := 0; i < ok; i++ {
		total.Inc()
		h.Observe(int64(okLat))
	}
	for i := 0; i < bad; i++ {
		total.Inc()
		shed.Inc()
		h.Observe(int64(badLat))
	}
}

func TestScoreboardIdleWindow(t *testing.T) {
	b := New(Config{Window: time.Minute, Objectives: []Objective{navObjective()}})
	rep := b.Report(time.Now())
	c := rep.Class("nav")
	if c.Requests != 0 || c.Availability != 1 || !c.AvailabilityMet || !c.P99Met || c.AvailabilityBurn != 0 {
		t.Fatalf("idle report = %+v", c)
	}
	if !rep.Met() {
		t.Fatal("idle scoreboard not Met")
	}
}

func TestScoreboardBurnReactsToSheds(t *testing.T) {
	reg := metrics.NewRegistry()
	b := New(Config{Window: time.Minute, Objectives: []Objective{navObjective()}})
	t0 := time.Now()

	// Healthy window: 1000 requests, 0 bad, all fast.
	drive(reg, 1000, 0, 5*time.Millisecond, 0)
	b.Sample(t0, reg.Snapshot())
	drive(reg, 1000, 0, 5*time.Millisecond, 0)
	b.Sample(t0.Add(10*time.Second), reg.Snapshot())
	rep := b.Report(t0.Add(10 * time.Second))
	c := rep.Class("nav")
	if !c.AvailabilityMet || !c.P99Met || c.AvailabilityBurn != 0 {
		t.Fatalf("healthy window burning: %+v", c)
	}
	if c.Requests != 1000 {
		t.Fatalf("window requests = %d, want the delta 1000", c.Requests)
	}

	// Overload window: 5% shed at the deadline, tail blown.
	drive(reg, 950, 50, 5*time.Millisecond, 300*time.Millisecond)
	b.Sample(t0.Add(20*time.Second), reg.Snapshot())
	rep = b.Report(t0.Add(20 * time.Second))
	c = rep.Class("nav")
	if c.Requests != 2000 || c.Bad != 50 {
		t.Fatalf("overload window counts = %d/%d, want 2000/50", c.Requests, c.Bad)
	}
	// 50/2000 = 2.5% error rate against a 0.1% budget: 25x burn.
	if c.AvailabilityBurn < 24 || c.AvailabilityBurn > 26 {
		t.Fatalf("availability burn = %.2f, want ~25", c.AvailabilityBurn)
	}
	if c.AvailabilityMet {
		t.Fatal("5%% sheds reported as meeting 99.9%% availability")
	}
	if c.LatencyBurn <= 1 || c.P99Met {
		t.Fatalf("blown tail not burning: %+v", c)
	}
	if c.BudgetRemaining >= 0 {
		t.Fatalf("budget remaining = %.2f, want overspent", c.BudgetRemaining)
	}
	if rep.Met() {
		t.Fatal("burning report claims Met")
	}
}

// The window must slide: old samples become the baseline, so an
// incident more than a window ago stops burning.
func TestScoreboardWindowSlides(t *testing.T) {
	reg := metrics.NewRegistry()
	b := New(Config{Window: 30 * time.Second, Objectives: []Objective{navObjective()}})
	t0 := time.Now()

	drive(reg, 900, 100, 5*time.Millisecond, 200*time.Millisecond) // incident
	b.Sample(t0, reg.Snapshot())
	drive(reg, 1000, 0, 5*time.Millisecond, 0) // recovered
	b.Sample(t0.Add(40*time.Second), reg.Snapshot())
	drive(reg, 1000, 0, 5*time.Millisecond, 0)
	b.Sample(t0.Add(60*time.Second), reg.Snapshot())

	c := b.Report(t0.Add(60 * time.Second)).Class("nav")
	if c.Bad != 0 || c.AvailabilityBurn != 0 {
		t.Fatalf("incident outside the window still burning: %+v", c)
	}
	// The baseline is the newest sample at or before the cutoff — here
	// the t0 sample, whose cumulative counts already include the
	// incident — so the delta spans both recovered batches and none of
	// the incident.
	if c.Requests != 2000 {
		t.Fatalf("window requests = %d, want 2000", c.Requests)
	}
}

func TestScoreboardHistoryBounded(t *testing.T) {
	b := New(Config{Window: time.Minute, MaxSamples: 4, Objectives: []Objective{navObjective()}})
	t0 := time.Now()
	for i := 0; i < 100; i++ {
		b.Sample(t0.Add(time.Duration(i)*time.Second), metrics.Snapshot{})
	}
	if rep := b.Report(t0.Add(100 * time.Second)); rep.Samples != 4 {
		t.Fatalf("history = %d samples, want bounded at 4", rep.Samples)
	}
	// Out-of-order samples are dropped, not spliced.
	b.Sample(t0, metrics.Snapshot{})
	if rep := b.Report(t0.Add(100 * time.Second)); rep.Samples != 4 {
		t.Fatalf("out-of-order sample accepted")
	}
}

func TestHandlerSamplesAndReports(t *testing.T) {
	reg := metrics.NewRegistry()
	b := New(Config{Window: time.Minute, Objectives: []Objective{navObjective()}})
	h := Handler(b, func() metrics.Snapshot { return reg.Snapshot() })

	drive(reg, 100, 0, time.Millisecond, 0)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 1 || len(rep.Classes) != 1 {
		t.Fatalf("first poll report = %+v", rep)
	}

	drive(reg, 50, 50, time.Millisecond, 200*time.Millisecond)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	c := rep.Class("nav")
	if c.Bad != 50 || c.AvailabilityBurn <= 1 {
		t.Fatalf("second poll did not see the burn: %+v", c)
	}
	if !strings.Contains(rep.Summary(), "BURNING") {
		t.Fatalf("summary = %q, want BURNING", rep.Summary())
	}
}
