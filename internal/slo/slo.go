// Package slo turns the fleet's merged metrics into service-level
// judgements: per-class availability and p99-latency objectives over a
// rolling window, plus the error-budget burn rate SRE practice steers
// by. The inputs are plain cumulative metrics.Snapshots (one process's
// registry, or the router's cluster-wide merge): the scoreboard keeps
// a short history of timestamped snapshots and differences the window
// out of them, so the arithmetic works identically for a single
// replica, a shard, or the whole tier, and a restarted process (whose
// counters move backwards) degrades to an empty window instead of
// nonsense.
//
// Burn rate is normalized so 1.0 means "consuming error budget exactly
// as fast as the objective allows": an availability target of 99.9%
// allows 0.1% of requests to fail, so a window with 0.2% failures
// burns at 2.0. The latency objective is a p99 target, so its budget
// is the 1% of requests allowed over the target; a window where 3% of
// requests exceed the target burns at 3.0. Anything sustained above
// 1.0 is eating into the budget; the scoreboard exists so the load
// harness and the /slo endpoint can see that the moment shedding or
// tail inflation starts, not after the fact.
package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"snode/internal/metrics"
)

// Objective is one request class's service-level objective and the
// metric names that measure it.
type Objective struct {
	// Class labels the objective in reports ("nav", "mining").
	Class string `json:"class"`
	// TotalCounter names the class's offered-request counter.
	TotalCounter string `json:"total_counter"`
	// BadCounters name the counters whose deltas count against the
	// availability budget (sheds, 5xx errors).
	BadCounters []string `json:"bad_counters"`
	// LatencyHist names the class's end-to-end latency histogram.
	LatencyHist string `json:"latency_hist"`
	// Availability is the availability target in (0, 1), e.g. 0.999.
	Availability float64 `json:"availability"`
	// P99 is the latency target: 99% of the window's requests must
	// finish within it.
	P99 time.Duration `json:"p99_target_ns"`
}

// Config sizes a Scoreboard.
type Config struct {
	// Window is the rolling evaluation window (default 60s).
	Window time.Duration
	// MaxSamples bounds the snapshot history (default 128). With
	// samples every few seconds that comfortably covers the window.
	MaxSamples int
	// Objectives are the per-class objectives to evaluate.
	Objectives []Objective
}

// Scoreboard accumulates timestamped cumulative snapshots and
// evaluates the objectives over the most recent window. Safe for
// concurrent use.
type Scoreboard struct {
	window     time.Duration
	maxSamples int
	objectives []Objective

	mu      sync.Mutex
	samples []sample
}

type sample struct {
	at   time.Time
	snap metrics.Snapshot
}

// New builds a scoreboard. Zero config fields take the documented
// defaults.
func New(cfg Config) *Scoreboard {
	if cfg.Window <= 0 {
		cfg.Window = 60 * time.Second
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 128
	}
	return &Scoreboard{
		window:     cfg.Window,
		maxSamples: cfg.MaxSamples,
		objectives: append([]Objective(nil), cfg.Objectives...),
	}
}

// Window returns the rolling evaluation window.
func (b *Scoreboard) Window() time.Duration { return b.window }

// Sample appends one cumulative snapshot taken at the given time.
// Out-of-order samples (at earlier than the newest) are dropped.
func (b *Scoreboard) Sample(at time.Time, snap metrics.Snapshot) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := len(b.samples); n > 0 && at.Before(b.samples[n-1].at) {
		return
	}
	b.samples = append(b.samples, sample{at: at, snap: snap})
	if len(b.samples) > b.maxSamples {
		b.samples = b.samples[len(b.samples)-b.maxSamples:]
	}
}

// ClassReport is one objective's windowed evaluation.
type ClassReport struct {
	Class string `json:"class"`
	// Requests and Bad are the window's offered and budget-burning
	// request counts.
	Requests int64 `json:"requests"`
	Bad      int64 `json:"bad"`
	// Availability is the window's good/offered ratio (1 when idle) vs
	// the target; AvailabilityMet reports target attainment.
	Availability       float64 `json:"availability"`
	AvailabilityTarget float64 `json:"availability_target"`
	AvailabilityMet    bool    `json:"availability_met"`
	// AvailabilityBurn is the error-budget burn rate: the window's
	// error rate over the allowed error rate (1.0 = consuming budget
	// exactly at the sustainable rate).
	AvailabilityBurn float64 `json:"availability_burn"`
	// P99MS is the window's observed p99 vs the target; SlowShare is
	// the fraction of the window's requests over the target, and
	// LatencyBurn normalizes it by the allowed 1%.
	P99MS       float64 `json:"p99_ms"`
	P99TargetMS float64 `json:"p99_target_ms"`
	P99Met      bool    `json:"p99_met"`
	SlowShare   float64 `json:"slow_share"`
	LatencyBurn float64 `json:"latency_burn"`
	// BudgetRemaining is the unburned fraction of the window's
	// availability error budget (negative once overspent).
	BudgetRemaining float64 `json:"budget_remaining"`
}

// Report is the scoreboard's full windowed evaluation.
type Report struct {
	At            time.Time     `json:"at"`
	WindowSeconds float64       `json:"window_seconds"`
	Samples       int           `json:"samples"`
	Classes       []ClassReport `json:"classes"`
}

// Met reports whether every class met both its availability and
// latency objectives over the window.
func (r Report) Met() bool {
	for _, c := range r.Classes {
		if !c.AvailabilityMet || !c.P99Met {
			return false
		}
	}
	return true
}

// Class returns the named class's report, or a zero report.
func (r Report) Class(name string) ClassReport {
	for _, c := range r.Classes {
		if c.Class == name {
			return c
		}
	}
	return ClassReport{}
}

// Report evaluates the objectives over the window ending now. The
// baseline is the newest sample at least Window old (the oldest
// retained one while history is still short); with fewer than two
// samples every class reports an idle window.
func (b *Scoreboard) Report(now time.Time) Report {
	b.mu.Lock()
	samples := append([]sample(nil), b.samples...)
	b.mu.Unlock()

	rep := Report{At: now, WindowSeconds: b.window.Seconds(), Samples: len(samples)}
	var base, latest sample
	if n := len(samples); n > 0 {
		latest = samples[n-1]
		base = samples[0]
		cutoff := now.Add(-b.window)
		for _, s := range samples {
			if s.at.After(cutoff) {
				break
			}
			base = s
		}
	}
	for _, o := range b.objectives {
		rep.Classes = append(rep.Classes, evalObjective(o, base.snap, latest.snap))
	}
	return rep
}

// counterDelta is the clamped windowed increase of one counter.
func counterDelta(name string, base, latest metrics.Snapshot) int64 {
	d := latest.Counters[name] - base.Counters[name]
	if d < 0 {
		d = 0
	}
	return d
}

func evalObjective(o Objective, base, latest metrics.Snapshot) ClassReport {
	c := ClassReport{
		Class:              o.Class,
		Availability:       1,
		AvailabilityTarget: o.Availability,
		AvailabilityMet:    true,
		P99Met:             true,
		P99TargetMS:        float64(o.P99) / float64(time.Millisecond),
		BudgetRemaining:    1,
	}
	c.Requests = counterDelta(o.TotalCounter, base, latest)
	for _, bad := range o.BadCounters {
		c.Bad += counterDelta(bad, base, latest)
	}
	if c.Bad > c.Requests {
		c.Bad = c.Requests
	}
	allowedErr := 1 - o.Availability
	if c.Requests > 0 {
		errRate := float64(c.Bad) / float64(c.Requests)
		c.Availability = 1 - errRate
		c.AvailabilityMet = c.Availability >= o.Availability
		if allowedErr > 0 {
			c.AvailabilityBurn = errRate / allowedErr
			c.BudgetRemaining = 1 - c.AvailabilityBurn
		} else if c.Bad > 0 {
			// A 100% target has no budget: any failure is infinite burn,
			// reported as a large sentinel to stay JSON-representable.
			c.AvailabilityBurn = 1e9
			c.BudgetRemaining = -1e9
		}
	}

	if h, ok := latest.Histograms[o.LatencyHist]; ok && o.P99 > 0 {
		win := h
		if bh, ok := base.Histograms[o.LatencyHist]; ok {
			if d, err := h.Sub(bh); err == nil {
				win = d
			}
		}
		if win.Count > 0 {
			c.P99MS = float64(win.P99()) / float64(time.Millisecond)
			// Count observations over the target by bucket: a bucket is
			// "within target" when its upper bound fits. The target is
			// normally aligned to a bucket bound; when it is not, this
			// charges the whole straddling bucket against the budget —
			// the conservative reading.
			var under int64
			for i, bound := range win.Bounds {
				if bound <= int64(o.P99) {
					under += win.Counts[i]
				}
			}
			over := win.Count - under
			if over < 0 {
				over = 0
			}
			c.SlowShare = float64(over) / float64(win.Count)
			c.LatencyBurn = c.SlowShare / 0.01
			c.P99Met = c.SlowShare <= 0.01
		}
	}
	return c
}

// Handler serves the scoreboard at /slo: it takes a fresh sample via
// sampleFn (when non-nil) and answers with the windowed Report as
// JSON, so polling the endpoint is what advances the window.
func Handler(b *Scoreboard, sampleFn func() metrics.Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		now := time.Now()
		if sampleFn != nil {
			b.Sample(now, sampleFn())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(b.Report(now))
	})
}

// Summary renders a one-line-per-class digest for CLI output.
func (r Report) Summary() string {
	if len(r.Classes) == 0 {
		return "slo: no objectives configured"
	}
	out := ""
	for i, c := range r.Classes {
		if i > 0 {
			out += "\n"
		}
		status := "OK"
		if !c.AvailabilityMet || !c.P99Met {
			status = "BURNING"
		}
		out += fmt.Sprintf("slo %-6s %s avail %.4f (target %.4f, burn %.2fx) p99 %.1fms (target %.0fms, slow %.2f%%, burn %.2fx) over %d reqs",
			c.Class, status, c.Availability, c.AvailabilityTarget, c.AvailabilityBurn,
			c.P99MS, c.P99TargetMS, 100*c.SlowShare, c.LatencyBurn, c.Requests)
	}
	return out
}
