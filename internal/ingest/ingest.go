// Package ingest reads real Web-graph datasets into the corpus model
// every representation in this repository is built from. Everything so
// far ran on internal/synth; this package is the door to the corpora
// the related work validates on — SNAP edge lists (web-Google and
// friends) and the GraphChallenge TSV family — with the operational
// hygiene a multi-hundred-MB download needs:
//
//   - Streaming, gzip-transparent parsing (magic-byte sniffing, so
//     both graph.txt and graph.txt.gz work) with comment/blank-line
//     handling and line-numbered errors for malformed input.
//   - SHA-256 checksum verification against a sha256sum-style manifest
//     when one sits next to the dataset.
//   - Deterministic ID compaction: arbitrary (non-contiguous, 64-bit)
//     node IDs become dense int32 page IDs in ascending raw-ID order,
//     so the same input file always produces the same corpus.
//   - URL-table sidecar support, and stable URL/domain synthesis for
//     ID-only graphs (the common case for public edge lists) so the
//     partitioner's domain-locality machinery still has something to
//     bite on.
//   - A bounded-heap external-memory mode: when the edge working set
//     would exceed Options.MaxHeapMB, edges spill to disk in sorted
//     runs that a k-way merge replays into the final CSR arrays, so a
//     1M+ page corpus ingests under a configurable budget.
//
// The inverse direction, Export, writes any crawl back out as a SNAP
// style edge list plus URL-table sidecar and checksum manifest — the
// round-trip oracle the tests pin (synth → export → ingest must
// rebuild the identical corpus) and a way to exercise the 1M-page
// path without network access.
package ingest

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/synth"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

// Supported edge-list formats.
const (
	// FormatSNAP is the SNAP collection's plain edge list: one
	// "src<ws>dst" pair per line, '#' comment lines, whitespace
	// separated (web-Google.txt is the canonical instance).
	FormatSNAP = "snap"
	// FormatTSV is the GraphChallenge tab-separated family:
	// "src\tdst" or "src\tdst\tweight" per line; the weight is parsed
	// (it must be numeric) and discarded — the S-Node schemes model
	// unweighted hyperlinks.
	FormatTSV = "tsv"
)

// Formats lists the accepted Options.Format values.
func Formats() []string { return []string{FormatSNAP, FormatTSV} }

// Default sidecar file names probed next to the dataset.
const (
	DefaultURLTable = "urls.tsv"
	DefaultManifest = "manifest.sha256"
)

// Options controls ingestion. The zero value ingests a SNAP file fully
// in memory with synthesized URLs.
type Options struct {
	// Format selects the parser (FormatSNAP when empty).
	Format string
	// MaxHeapMB bounds the ingestion working set: the raw-edge buffer
	// spills to disk in sorted runs once it would exceed this budget,
	// and the final merge streams the runs back. <= 0 disables
	// spilling (everything is sorted in memory). The budget governs
	// ingestion state only — the finished CSR graph and page metadata
	// are the irreducible output and sit on top of it.
	MaxHeapMB int
	// SpillDir holds the sorted runs; empty selects a temporary
	// directory. Run files are deleted as the merge consumes them.
	SpillDir string
	// URLTable is the path of the page-metadata sidecar
	// (id\turl\tdomain[\tcomma-joined-terms] per line). Empty probes
	// for DefaultURLTable next to the dataset; ingestion of ID-only
	// graphs synthesizes stable page URLs instead (see SynthesizeMeta).
	// When a table is present it defines the node universe: every page
	// in the table exists (isolated pages included), and an edge
	// endpoint missing from the table is an error.
	URLTable string
	// Manifest is the path of a sha256sum-style checksum manifest.
	// Empty probes for DefaultManifest next to the dataset; when found
	// (or given), the dataset and URL-table bytes are verified against
	// it and a mismatch aborts the ingest.
	Manifest string
	// PagesPerDomain sets the granularity of synthesized domains for
	// ID-only graphs (default 1200, matching the synth generator).
	PagesPerDomain int
	// Metrics, when non-nil, receives ingest_* counters and spill
	// gauges.
	Metrics *metrics.Registry
	// IO, when non-nil, charges modeled spill writes and read-backs to
	// the accountant (paced under SetPace like every other modeled
	// access).
	IO *iosim.Accountant
}

// Stats reports what one ingest run saw.
type Stats struct {
	Lines     int64 // physical lines read
	Comments  int64 // comment + blank lines skipped
	EdgeLines int64 // parsed edge lines
	DupEdges  int64 // duplicate pairs coalesced away
	SelfLoops int64 // self-loop edges (retained; they occur on the Web)
	Nodes     int   // distinct pages after compaction
	Edges     int64 // distinct directed edges in the final graph
	// Spill accounting: Runs counts sorted runs written to disk (0 in
	// the in-memory mode), SpillBytes the total run bytes written.
	Runs       int
	SpillBytes int64
	// ChecksumVerified reports whether a manifest covered the dataset.
	ChecksumVerified bool
	// SynthesizedMeta reports whether page URLs were synthesized (no
	// URL-table sidecar).
	SynthesizedMeta bool
}

// Ingest reads the edge-list dataset at path and returns it as a crawl
// (corpus + page order) ready for repo.Build; Order is ascending page
// ID — for a real dataset the crawl sequence is unknown, and ascending
// compacted ID is the deterministic choice. See the package comment
// for the pipeline.
func Ingest(ctx context.Context, path string, opt Options) (*synth.Crawl, *Stats, error) {
	ctx, span := trace.Start(ctx, "ingest")
	defer span.End()

	format := opt.Format
	if format == "" {
		format = FormatSNAP
	}
	if format != FormatSNAP && format != FormatTSV {
		return nil, nil, fmt.Errorf("ingest: unknown format %q (one of: %s)", format, strings.Join(Formats(), ", "))
	}

	man, err := resolveManifest(path, opt.Manifest)
	if err != nil {
		return nil, nil, err
	}
	urlPath, err := resolveURLTable(path, opt.URLTable)
	if err != nil {
		return nil, nil, err
	}

	st := &Stats{ChecksumVerified: man != nil}

	// The URL table, when present, defines the node universe up front;
	// the spiller then skips collecting node-ID runs of its own.
	var (
		universe []uint64
		metas    []webgraph.PageMeta
	)
	if urlPath != "" {
		universe, metas, err = readURLTable(urlPath, man)
		if err != nil {
			return nil, nil, err
		}
	}

	sp, err := newSpiller(opt, universe != nil)
	if err != nil {
		return nil, nil, err
	}
	defer sp.cleanup()

	if err := parseEdges(ctx, path, format, man, sp, st); err != nil {
		return nil, nil, err
	}

	offsets, targets, table, err := sp.finalize(ctx, universe, st)
	if err != nil {
		return nil, nil, err
	}
	g, err := webgraph.NewGraphCSR(offsets, targets)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: %s: %w", path, err)
	}
	st.Nodes = g.NumPages()
	st.Edges = g.NumEdges()

	if metas == nil {
		ppd := opt.PagesPerDomain
		if ppd <= 0 {
			ppd = 1200
		}
		metas = SynthesizeMeta(len(table), ppd)
		st.SynthesizedMeta = true
	}

	if opt.Metrics != nil {
		reg := opt.Metrics
		reg.Counter("ingest_lines").Add(st.Lines)
		reg.Counter("ingest_comment_lines").Add(st.Comments)
		reg.Counter("ingest_edge_lines").Add(st.EdgeLines)
		reg.Counter("ingest_dup_edges").Add(st.DupEdges)
		reg.Counter("ingest_self_loops").Add(st.SelfLoops)
		reg.Gauge("ingest_nodes").Set(int64(st.Nodes))
		reg.Gauge("ingest_edges").Set(st.Edges)
	}

	order := make([]webgraph.PageID, len(table))
	for i := range order {
		order[i] = webgraph.PageID(i)
	}
	crawl := &synth.Crawl{
		Corpus: &webgraph.Corpus{Graph: g, Pages: metas},
		Order:  order,
	}
	if err := crawl.Corpus.Validate(); err != nil {
		return nil, nil, fmt.Errorf("ingest: %s: %w", path, err)
	}
	span.SetAttr("nodes", int64(st.Nodes))
	span.SetAttr("edges", st.Edges)
	span.SetAttr("runs", int64(st.Runs))
	return crawl, st, nil
}

// parseEdges streams the dataset into the spiller: gzip-transparent,
// checksum-verified, comments skipped, malformed lines rejected with
// their line number.
func parseEdges(ctx context.Context, path, format string, man manifest, sp *spiller, st *Stats) error {
	_, span := trace.Start(ctx, "ingest.parse")
	defer span.End()

	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()

	// The checksum covers the on-disk bytes, so the hasher taps the
	// stream before gzip inflation.
	var (
		raw    io.Reader = f
		hasher hash.Hash
	)
	wantSum, verify := manifestSum(man, path)
	if verify {
		hasher = sha256.New()
		raw = io.TeeReader(f, hasher)
	}
	braw := bufio.NewReaderSize(raw, 1<<20)
	r, err := maybeGunzip(braw)
	if err != nil {
		return fmt.Errorf("ingest: %s: %w", path, err)
	}

	// The line loop stays on sc.Bytes() with hand-rolled field splits:
	// at web-Google scale (millions of lines) a per-line string or
	// []fields allocation is hundreds of MB of garbage, which would
	// poison the very heap bound -max-heap-mb promises.
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var lineNo int64
	for sc.Scan() {
		lineNo++
		st.Lines++
		line := sc.Bytes()
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			st.Comments++
			continue
		}
		var fsrc, fdst []byte
		switch format {
		case FormatSNAP:
			var rest []byte
			fsrc, rest = nextToken(line)
			fdst, rest = nextToken(rest)
			if tail, _ := nextToken(rest); len(fdst) == 0 || len(tail) != 0 {
				return fmt.Errorf("ingest: %s:%d: want 2 whitespace-separated fields in %q", path, lineNo, line)
			}
		case FormatTSV:
			i := bytes.IndexByte(line, '\t')
			if i < 0 {
				return fmt.Errorf("ingest: %s:%d: want 2 or 3 tab-separated fields in %q", path, lineNo, line)
			}
			fsrc = line[:i]
			rest := line[i+1:]
			if j := bytes.IndexByte(rest, '\t'); j >= 0 {
				fdst = rest[:j]
				weight := rest[j+1:]
				if bytes.IndexByte(weight, '\t') >= 0 {
					return fmt.Errorf("ingest: %s:%d: want 2 or 3 tab-separated fields in %q", path, lineNo, line)
				}
				if _, err := strconv.ParseFloat(strings.TrimSpace(string(weight)), 64); err != nil {
					return fmt.Errorf("ingest: %s:%d: bad weight %q", path, lineNo, weight)
				}
			} else {
				fdst = rest
			}
		}
		src, err := strconv.ParseUint(string(fsrc), 10, 64)
		if err != nil {
			return fmt.Errorf("ingest: %s:%d: bad source id %q", path, lineNo, fsrc)
		}
		dst, err := strconv.ParseUint(string(fdst), 10, 64)
		if err != nil {
			return fmt.Errorf("ingest: %s:%d: bad target id %q", path, lineNo, fdst)
		}
		st.EdgeLines++
		if src == dst {
			st.SelfLoops++
		}
		if err := sp.add(ctx, src, dst, st); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// A truncated gzip stream or oversized line surfaces here; the
		// line number localizes how far the parse got.
		return fmt.Errorf("ingest: %s:%d: %w", path, lineNo+1, err)
	}
	if verify {
		// Drain whatever the logical reader left unconsumed (gzip
		// trailer bytes, readahead) so the hash covers the whole file.
		if _, err := io.Copy(io.Discard, braw); err != nil {
			return fmt.Errorf("ingest: %s: %w", path, err)
		}
		got := hex.EncodeToString(hasher.Sum(nil))
		if got != wantSum {
			return fmt.Errorf("ingest: %s: checksum mismatch: manifest %s, file %s", path, wantSum, got)
		}
	}
	return nil
}

// nextToken returns the next whitespace-delimited token of line and
// the remainder after it (an empty token means none left). Allocation
// free, unlike strings.Fields.
func nextToken(line []byte) (tok, rest []byte) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	j := i
	for j < len(line) && line[j] != ' ' && line[j] != '\t' {
		j++
	}
	return line[i:j], line[j:]
}

// maybeGunzip sniffs the gzip magic and inflates transparently.
func maybeGunzip(br *bufio.Reader) (io.Reader, error) {
	magic, err := br.Peek(2)
	if err != nil {
		if err == io.EOF {
			return br, nil // empty file: the scanner sees EOF
		}
		return nil, err
	}
	if magic[0] == 0x1f && magic[1] == 0x8b {
		return gzip.NewReader(br)
	}
	return br, nil
}

// SynthesizeMeta builds stable page metadata for an ID-only graph:
// page i lives at
//
//	http://www.example-dDDDDD.net/dK/pageNNNNNNN.html
//
// where DDDDD = i/pagesPerDomain (so consecutive compacted IDs share a
// registered domain and urlutil.Domain recovers "example-dDDDDD.net"
// for the initial by-domain partition) and dK buckets the domain's
// pages into eight directories (so URL split still has prefixes to
// work with before clustered split takes over). The scheme depends
// only on (i, pagesPerDomain): re-ingesting the same dataset always
// yields the same corpus.
func SynthesizeMeta(n, pagesPerDomain int) []webgraph.PageMeta {
	metas := make([]webgraph.PageMeta, n)
	for i := 0; i < n; i++ {
		dom := i / pagesPerDomain
		k := i % pagesPerDomain
		dir := k * 8 / pagesPerDomain
		domain := fmt.Sprintf("example-d%05d.net", dom)
		metas[i] = webgraph.PageMeta{
			URL:    fmt.Sprintf("http://www.%s/d%d/page%07d.html", domain, dir, i),
			Domain: domain,
		}
	}
	return metas
}

// resolveManifest finds and parses the checksum manifest: an explicit
// path must exist; otherwise DefaultManifest next to the dataset is
// probed and silently skipped when absent.
func resolveManifest(dataset, explicit string) (manifest, error) {
	path := explicit
	if path == "" {
		probe := filepath.Join(filepath.Dir(dataset), DefaultManifest)
		if _, err := os.Stat(probe); err != nil {
			return nil, nil
		}
		path = probe
	}
	return readManifestFile(path)
}

// resolveURLTable finds the page-metadata sidecar under the same
// explicit-vs-probe rule.
func resolveURLTable(dataset, explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("ingest: url table: %w", err)
		}
		return explicit, nil
	}
	probe := filepath.Join(filepath.Dir(dataset), DefaultURLTable)
	if _, err := os.Stat(probe); err != nil {
		return "", nil
	}
	return probe, nil
}

// checkNodeCount guards the int32 page-ID space.
func checkNodeCount(n int) error {
	if int64(n) > int64(math.MaxInt32) {
		return fmt.Errorf("ingest: %d nodes exceed the int32 page-ID space", n)
	}
	return nil
}
