package ingest

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snode/internal/snode"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// genCrawl returns a small deterministic synthetic crawl.
func genCrawl(t *testing.T, pages int) *synth.Crawl {
	t.Helper()
	cfg := synth.DefaultConfig(pages)
	cfg.Seed = 20030226
	c, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sameCorpus compares graphs and page metadata (terms order included).
func sameCorpus(t *testing.T, a, b *webgraph.Corpus) {
	t.Helper()
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("graphs diverge")
	}
	if len(a.Pages) != len(b.Pages) {
		t.Fatalf("page counts diverge: %d vs %d", len(a.Pages), len(b.Pages))
	}
	for i := range a.Pages {
		if a.Pages[i].URL != b.Pages[i].URL || a.Pages[i].Domain != b.Pages[i].Domain ||
			strings.Join(a.Pages[i].Terms, ",") != strings.Join(b.Pages[i].Terms, ",") {
			t.Fatalf("page %d diverges: %+v vs %+v", i, a.Pages[i], b.Pages[i])
		}
	}
}

// TestExportIngestRoundTrip: synth -> export -> ingest reproduces the
// corpus exactly (the URL-table sidecar carries everything but the
// crawl visit order), for both plain and gzipped exports.
func TestExportIngestRoundTrip(t *testing.T) {
	crawl := genCrawl(t, 1500)
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		res, err := Export(crawl.Corpus, dir, ExportOptions{Gzip: gz})
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Ingest(context.Background(), res.GraphPath, Options{})
		if err != nil {
			t.Fatalf("gzip=%v: %v", gz, err)
		}
		if !st.ChecksumVerified || st.SynthesizedMeta {
			t.Fatalf("gzip=%v: stats = %+v, want verified checksum and real metadata", gz, st)
		}
		sameCorpus(t, crawl.Corpus, got.Corpus)
	}
}

// dirFilesEqual asserts two build directories hold byte-identical
// files.
func dirFilesEqual(t *testing.T, a, b string) {
	t.Helper()
	ents, err := os.ReadDir(a)
	if err != nil {
		t.Fatal(err)
	}
	bents, err := os.ReadDir(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(bents) {
		t.Fatalf("%s has %d files, %s has %d", a, len(ents), b, len(bents))
	}
	for _, e := range ents {
		da, err := os.ReadFile(filepath.Join(a, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Fatalf("artifact %s differs between %s and %s", e.Name(), a, b)
		}
	}
}

// TestGoldenBuildEquivalence pins the end-to-end oracle: synth ->
// export -> ingest -> S-Node build produces byte-identical artifacts to
// the direct in-memory build of the same corpus, at every worker count,
// with both the ingest heap budget and the refinement spill rounds
// engaged.
func TestGoldenBuildEquivalence(t *testing.T) {
	// 6000 pages is ~63k edges — past the 1 MB budget's ~44k-edge
	// buffer, so the ingest below genuinely spills sorted runs.
	crawl := genCrawl(t, 6000)
	ws := t.TempDir()

	dsDir := filepath.Join(ws, "dataset")
	res, err := Export(crawl.Corpus, dsDir, ExportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ingested, st, err := Ingest(context.Background(), res.GraphPath, Options{MaxHeapMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs == 0 {
		t.Fatal("1 MB budget did not spill; the external-memory path went untested")
	}
	sameCorpus(t, crawl.Corpus, ingested.Corpus)

	for _, workers := range []int{1, 4} {
		directDir := filepath.Join(ws, "direct", "w"+string(rune('0'+workers)))
		ingestDir := filepath.Join(ws, "ingest", "w"+string(rune('0'+workers)))
		for _, d := range []string{directDir, ingestDir} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		dcfg := snode.DefaultConfig()
		dcfg.BuildWorkers = workers
		dcfg.Partition.Workers = workers
		if _, err := snode.Build(crawl.Corpus, dcfg, directDir); err != nil {
			t.Fatalf("workers=%d direct: %v", workers, err)
		}
		icfg := snode.DefaultConfig()
		icfg.BuildWorkers = workers
		icfg.Partition.Workers = workers
		icfg.Partition.SpillDir = filepath.Join(ws, "refine-spill")
		if _, err := snode.Build(ingested.Corpus, icfg, ingestDir); err != nil {
			t.Fatalf("workers=%d ingest: %v", workers, err)
		}
		dirFilesEqual(t, directDir, ingestDir)
	}
}

// TestCommittedFixture guards the on-disk formats against drift: the
// checked-in dataset (sngen -pages 400 -format edgelist) must keep
// ingesting with a verified checksum and real page metadata.
func TestCommittedFixture(t *testing.T) {
	crawl, st, err := Ingest(context.Background(),
		filepath.Join("testdata", "tiny", "graph.txt"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.ChecksumVerified {
		t.Fatal("fixture manifest not verified")
	}
	if st.SynthesizedMeta {
		t.Fatal("fixture URL table not picked up")
	}
	if st.Nodes != 400 || st.Edges != 3666 {
		t.Fatalf("fixture parsed to %d nodes / %d edges, want 400 / 3666", st.Nodes, st.Edges)
	}
	if crawl.Corpus.Pages[0].Domain == "" {
		t.Fatal("fixture page metadata empty")
	}
}
