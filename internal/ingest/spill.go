// External-memory edge ingestion: a bounded in-memory buffer of raw
// (src, dst) pairs spills to disk as sorted, deduplicated,
// delta-coded runs; a k-way merge replays the runs as one globally
// sorted edge stream that is translated through the compacted ID
// table straight into CSR arrays. The discipline mirrors the
// workpool.Ordered streaming assembly of the S-Node builder: peak
// memory is O(budget) for ingestion state, never O(edges).
package ingest

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"snode/internal/metrics"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

// rawEdge is one parsed edge before compaction.
type rawEdge struct{ s, d uint64 }

// edgeBytes is the in-memory footprint charged per buffered edge: the
// pair itself plus sort/merge headroom, so MaxHeapMB honestly bounds
// the working set rather than just the array.
const edgeBytes = 24

// minBudgetEdges keeps degenerate budgets usable (and the run count
// bounded) instead of spilling every few lines.
const minBudgetEdges = 4096

// spiller accumulates edges, spilling sorted runs past the budget.
type spiller struct {
	opt           Options
	universeKnown bool // URL table defines the nodes; skip node runs

	buf    []rawEdge
	budget int // max buffered edges; 0 = unbounded

	dir    string
	ownDir bool
	runs   []runInfo

	mRuns      *metrics.Counter
	mBytes     *metrics.Counter
	mLiveBytes *metrics.Gauge
}

// runInfo locates one spilled run pair.
type runInfo struct {
	edgePath string
	nodePath string
	nEdges   int64
	nNodes   int64
	bytes    int64
}

func newSpiller(opt Options, universeKnown bool) (*spiller, error) {
	sp := &spiller{opt: opt, universeKnown: universeKnown}
	if opt.MaxHeapMB > 0 {
		sp.budget = opt.MaxHeapMB << 20 / edgeBytes
		if sp.budget < minBudgetEdges {
			sp.budget = minBudgetEdges
		}
		sp.buf = make([]rawEdge, 0, sp.budget)
	}
	if opt.Metrics != nil {
		sp.mRuns = opt.Metrics.Counter("ingest_runs_spilled")
		sp.mBytes = opt.Metrics.Counter("ingest_spill_bytes")
		sp.mLiveBytes = opt.Metrics.Gauge("ingest_spill_live_bytes")
	}
	return sp, nil
}

// add buffers one edge, spilling a sorted run when the buffer reaches
// the heap budget.
func (sp *spiller) add(ctx context.Context, s, d uint64, st *Stats) error {
	sp.buf = append(sp.buf, rawEdge{s, d})
	if sp.budget > 0 && len(sp.buf) >= sp.budget {
		return sp.flushRun(ctx, st)
	}
	return nil
}

// ensureDir lazily creates the spill directory on first flush.
func (sp *spiller) ensureDir() error {
	if sp.dir != "" {
		return nil
	}
	if sp.opt.SpillDir != "" {
		if err := os.MkdirAll(sp.opt.SpillDir, 0o755); err != nil {
			return fmt.Errorf("ingest: spill dir: %w", err)
		}
		sp.dir = sp.opt.SpillDir
		return nil
	}
	dir, err := os.MkdirTemp("", "snode-ingest-*")
	if err != nil {
		return fmt.Errorf("ingest: spill dir: %w", err)
	}
	sp.dir = dir
	sp.ownDir = true
	return nil
}

// cleanup removes whatever runs are still on disk (the merge deletes
// consumed runs itself; this covers error paths).
func (sp *spiller) cleanup() {
	for _, r := range sp.runs {
		os.Remove(r.edgePath)
		os.Remove(r.nodePath)
	}
	if sp.ownDir && sp.dir != "" {
		os.RemoveAll(sp.dir)
	}
	if sp.mLiveBytes != nil {
		sp.mLiveBytes.Set(0)
	}
}

// sortDedup sorts edges by (s, d) and removes duplicates in place,
// returning the compacted slice and the number of duplicates dropped.
func sortDedup(buf []rawEdge) ([]rawEdge, int64) {
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].s != buf[j].s {
			return buf[i].s < buf[j].s
		}
		return buf[i].d < buf[j].d
	})
	var dups int64
	k := 0
	for i := range buf {
		if i > 0 && buf[i] == buf[i-1] {
			dups++
			continue
		}
		buf[k] = buf[i]
		k++
	}
	return buf[:k], dups
}

// flushRun writes the buffered edges (and, unless the node universe is
// already known, their distinct node IDs) as one sorted run.
func (sp *spiller) flushRun(ctx context.Context, st *Stats) error {
	if len(sp.buf) == 0 {
		return nil
	}
	_, span := trace.Start(ctx, "ingest.spill")
	defer span.End()
	if err := sp.ensureDir(); err != nil {
		return err
	}
	edges, dups := sortDedup(sp.buf)
	st.DupEdges += dups

	ri := runInfo{
		edgePath: filepath.Join(sp.dir, fmt.Sprintf("run-%04d.edges", len(sp.runs))),
		nodePath: filepath.Join(sp.dir, fmt.Sprintf("run-%04d.nodes", len(sp.runs))),
		nEdges:   int64(len(edges)),
	}
	n, err := writeEdgeRun(ri.edgePath, edges)
	if err != nil {
		return err
	}
	ri.bytes += n
	if !sp.universeKnown {
		nodes := make([]uint64, 0, 2*len(edges))
		for _, e := range edges {
			nodes = append(nodes, e.s, e.d)
		}
		nodes = dedupSorted(nodes)
		ri.nNodes = int64(len(nodes))
		n, err := writeNodeRun(ri.nodePath, nodes)
		if err != nil {
			return err
		}
		ri.bytes += n
	}
	sp.runs = append(sp.runs, ri)
	st.Runs++
	st.SpillBytes += ri.bytes
	if sp.opt.IO != nil {
		sp.opt.IO.Spill(ctx, ri.bytes)
	}
	if sp.mRuns != nil {
		sp.mRuns.Inc()
		sp.mBytes.Add(ri.bytes)
		sp.mLiveBytes.Add(ri.bytes)
	}
	span.SetAttr("edges", ri.nEdges)
	span.SetAttr("bytes", ri.bytes)
	sp.buf = sp.buf[:0]
	return nil
}

// dedupSorted sorts and deduplicates node IDs in place.
func dedupSorted(v []uint64) []uint64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	k := 0
	for i := range v {
		if i > 0 && v[i] == v[i-1] {
			continue
		}
		v[k] = v[i]
		k++
	}
	return v[:k]
}

// finalize turns everything the spiller holds into CSR arrays plus the
// compaction table (raw ID per dense ID). universe, when non-nil, is
// the sorted raw-ID node set the URL table declared; edges referencing
// IDs outside it are an error. With universe nil the node set is the
// union of edge endpoints.
func (sp *spiller) finalize(ctx context.Context, universe []uint64, st *Stats) (offsets []int64, targets []webgraph.PageID, table []uint64, err error) {
	if len(sp.runs) == 0 {
		// In-memory path: one "run" that never touched disk.
		edges, dups := sortDedup(sp.buf)
		st.DupEdges += dups
		table = universe
		if table == nil {
			nodes := make([]uint64, 0, 2*len(edges))
			for _, e := range edges {
				nodes = append(nodes, e.s, e.d)
			}
			table = dedupSorted(nodes)
		}
		if err := checkNodeCount(len(table)); err != nil {
			return nil, nil, nil, err
		}
		offsets, targets, err = buildCSR(&sliceStream{edges: edges}, table, int64(len(edges)))
		if err != nil {
			return nil, nil, nil, err
		}
		return offsets, targets, table, nil
	}

	// Flush the tail so the merge sees every edge, and release the
	// buffer: the merge phase must not retain the budget's worth of
	// capacity on top of its own cursors.
	if err := sp.flushRun(ctx, st); err != nil {
		return nil, nil, nil, err
	}
	sp.buf = nil
	_, span := trace.Start(ctx, "ingest.merge")
	defer span.End()
	span.SetAttr("runs", int64(len(sp.runs)))

	table = universe
	if table == nil {
		table, err = sp.mergeNodes(ctx)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if err := checkNodeCount(len(table)); err != nil {
		return nil, nil, nil, err
	}

	ms, maxEdges, err := sp.openEdgeMerge(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	defer ms.close()
	offsets, targets, err = buildCSR(ms, table, maxEdges)
	if err != nil {
		return nil, nil, nil, err
	}
	st.DupEdges += ms.dups
	return offsets, targets, table, nil
}

// mergeNodes k-way merges the per-run node files into the compaction
// table.
func (sp *spiller) mergeNodes(ctx context.Context) ([]uint64, error) {
	var total int64
	curs := make([]*nodeCursor, 0, len(sp.runs))
	defer func() {
		for _, c := range curs {
			c.close()
		}
	}()
	for _, r := range sp.runs {
		c, err := openNodeRun(r.nodePath, r.nNodes)
		if err != nil {
			return nil, err
		}
		if sp.opt.IO != nil {
			sp.opt.IO.Spill(ctx, r.bytes-edgeRunBytes(r))
		}
		curs = append(curs, c)
		total += r.nNodes
	}
	var table []uint64
	for {
		best := -1
		for i, c := range curs {
			if !c.ok {
				continue
			}
			if best < 0 || c.cur < curs[best].cur {
				best = i
			}
		}
		if best < 0 {
			break
		}
		v := curs[best].cur
		if len(table) == 0 || table[len(table)-1] != v {
			table = append(table, v)
		}
		if err := curs[best].advance(); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// edgeRunBytes approximates a run's edge-file share of its byte count
// (only used to split the modeled read-back charge between node and
// edge merges; exactness is irrelevant to the model).
func edgeRunBytes(r runInfo) int64 {
	if r.nNodes == 0 {
		return r.bytes
	}
	return r.bytes * r.nEdges / (r.nEdges + r.nNodes)
}

// --- run file encoding ------------------------------------------------

// Edge runs are delta-coded uvarints over the sorted pairs: per edge,
// ds = s - prevS; ds > 0 resets the dst base (absolute dst follows),
// ds == 0 continues the source's list (dst delta follows). Node runs
// are plain sorted deltas. Both begin with a uvarint count.

func writeEdgeRun(path string, edges []rawEdge) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("ingest: spill: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf [binary.MaxVarintLen64]byte
	var written int64
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		written += int64(n)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(edges))); err != nil {
		f.Close()
		return 0, err
	}
	var prevS, prevD uint64
	for _, e := range edges {
		ds := e.s - prevS
		if err := put(ds); err != nil {
			f.Close()
			return 0, err
		}
		if ds > 0 {
			err = put(e.d)
		} else {
			err = put(e.d - prevD)
		}
		if err != nil {
			f.Close()
			return 0, err
		}
		prevS, prevD = e.s, e.d
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	return written, f.Close()
}

func writeNodeRun(path string, nodes []uint64) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("ingest: spill: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf [binary.MaxVarintLen64]byte
	var written int64
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		written += int64(n)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(nodes))); err != nil {
		f.Close()
		return 0, err
	}
	var prev uint64
	for _, v := range nodes {
		if err := put(v - prev); err != nil {
			f.Close()
			return 0, err
		}
		prev = v
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	return written, f.Close()
}

// nodeCursor streams one node run.
type nodeCursor struct {
	f    *os.File
	r    *bufio.Reader
	left int64
	prev uint64
	cur  uint64
	ok   bool
}

func openNodeRun(path string, n int64) (*nodeCursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: spill: %w", err)
	}
	c := &nodeCursor{f: f, r: bufio.NewReaderSize(f, 256<<10)}
	cnt, err := binary.ReadUvarint(c.r)
	if err != nil || int64(cnt) != n {
		f.Close()
		return nil, fmt.Errorf("ingest: spill: node run %s corrupt", path)
	}
	c.left = n
	if err := c.advance(); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func (c *nodeCursor) advance() error {
	if c.left == 0 {
		c.ok = false
		return nil
	}
	d, err := binary.ReadUvarint(c.r)
	if err != nil {
		return fmt.Errorf("ingest: spill: node run read: %w", err)
	}
	c.prev += d
	c.cur = c.prev
	c.left--
	c.ok = true
	return nil
}

func (c *nodeCursor) close() {
	c.f.Close()
	os.Remove(c.f.Name())
}

// edgeCursor streams one edge run.
type edgeCursor struct {
	f     *os.File
	r     *bufio.Reader
	left  int64
	prevS uint64
	prevD uint64
	cur   rawEdge
	ok    bool
}

func openEdgeRun(path string, n int64) (*edgeCursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: spill: %w", err)
	}
	c := &edgeCursor{f: f, r: bufio.NewReaderSize(f, 256<<10)}
	cnt, err := binary.ReadUvarint(c.r)
	if err != nil || int64(cnt) != n {
		f.Close()
		return nil, fmt.Errorf("ingest: spill: edge run %s corrupt", path)
	}
	c.left = n
	if err := c.advance(); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func (c *edgeCursor) advance() error {
	if c.left == 0 {
		c.ok = false
		return nil
	}
	ds, err := binary.ReadUvarint(c.r)
	if err != nil {
		return fmt.Errorf("ingest: spill: edge run read: %w", err)
	}
	d, err := binary.ReadUvarint(c.r)
	if err != nil {
		return fmt.Errorf("ingest: spill: edge run read: %w", err)
	}
	if ds > 0 {
		c.prevS += ds
		c.prevD = d
	} else {
		c.prevD += d
	}
	c.cur = rawEdge{c.prevS, c.prevD}
	c.left--
	c.ok = true
	return nil
}

func (c *edgeCursor) close() {
	c.f.Close()
	os.Remove(c.f.Name())
}

// --- merged edge stream ----------------------------------------------

// edgeStream yields (src, dst) pairs in ascending (src, dst) order
// with no duplicates.
type edgeStream interface {
	next() (rawEdge, bool, error)
}

// sliceStream adapts the in-memory sorted buffer.
type sliceStream struct {
	edges []rawEdge
	i     int
}

func (s *sliceStream) next() (rawEdge, bool, error) {
	if s.i >= len(s.edges) {
		return rawEdge{}, false, nil
	}
	e := s.edges[s.i]
	s.i++
	return e, true, nil
}

// mergeStream k-way merges edge runs, deduplicating across runs. The
// run count is small (total edges / budget), so a linear min scan per
// pop beats heap bookkeeping.
type mergeStream struct {
	curs []*edgeCursor
	last rawEdge
	any  bool
	dups int64
}

func (sp *spiller) openEdgeMerge(ctx context.Context) (*mergeStream, int64, error) {
	ms := &mergeStream{}
	var total int64
	for _, r := range sp.runs {
		c, err := openEdgeRun(r.edgePath, r.nEdges)
		if err != nil {
			ms.close()
			return nil, 0, err
		}
		if sp.opt.IO != nil {
			sp.opt.IO.Spill(ctx, edgeRunBytes(r))
		}
		ms.curs = append(ms.curs, c)
		total += r.nEdges
	}
	return ms, total, nil
}

func (m *mergeStream) next() (rawEdge, bool, error) {
	for {
		best := -1
		for i, c := range m.curs {
			if !c.ok {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := m.curs[best]
			if c.cur.s < b.cur.s || (c.cur.s == b.cur.s && c.cur.d < b.cur.d) {
				best = i
			}
		}
		if best < 0 {
			return rawEdge{}, false, nil
		}
		e := m.curs[best].cur
		if err := m.curs[best].advance(); err != nil {
			return rawEdge{}, false, err
		}
		if m.any && e == m.last {
			m.dups++
			continue
		}
		m.any = true
		m.last = e
		return e, true, nil
	}
}

func (m *mergeStream) close() {
	for _, c := range m.curs {
		c.close()
	}
}

// --- CSR construction -------------------------------------------------

// buildCSR consumes a sorted deduplicated edge stream, translating raw
// IDs through the compaction table into dense int32 page IDs and
// laying the adjacency down directly in CSR form. maxEdges sizes the
// target array's initial capacity (an upper bound; cross-run
// duplicates shrink it).
func buildCSR(s edgeStream, table []uint64, maxEdges int64) ([]int64, []webgraph.PageID, error) {
	n := len(table)
	offsets := make([]int64, n+1)
	targets := make([]webgraph.PageID, 0, maxEdges)
	row := 0 // dense source whose list is being appended
	for {
		e, ok, err := s.next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		ds, ok := denseOf(table, e.s)
		if !ok {
			return nil, nil, fmt.Errorf("ingest: edge source %d is not in the URL table's node set", e.s)
		}
		dd, ok := denseOf(table, e.d)
		if !ok {
			return nil, nil, fmt.Errorf("ingest: edge target %d is not in the URL table's node set", e.d)
		}
		for row < ds {
			row++
			offsets[row] = int64(len(targets))
		}
		targets = append(targets, webgraph.PageID(dd))
	}
	for row < n {
		row++
		offsets[row] = int64(len(targets))
	}
	return offsets, targets, nil
}

// denseOf binary-searches the compaction table.
func denseOf(table []uint64, raw uint64) (int, bool) {
	i := sort.Search(len(table), func(i int) bool { return table[i] >= raw })
	if i < len(table) && table[i] == raw {
		return i, true
	}
	return 0, false
}
