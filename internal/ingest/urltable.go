// Sidecar parsing: the sha256sum-style checksum manifest and the
// URL-table page-metadata file that accompany an exported or downloaded
// dataset.
package ingest

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"snode/internal/webgraph"
)

// manifest maps file base names to expected hex SHA-256 digests. A nil
// manifest means "no verification".
type manifest map[string]string

// readManifestFile parses a sha256sum-style manifest: one
// "<64-hex>  <name>" per line ('*' binary-mode markers tolerated),
// blank and '#' lines skipped.
func readManifestFile(path string) (manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: manifest: %w", err)
	}
	defer f.Close()

	man := manifest{}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(strings.TrimSuffix(sc.Text(), "\r"))
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("ingest: manifest %s:%d: want \"<sha256>  <name>\", got %q", path, lineNo, line)
		}
		sum := strings.ToLower(fields[0])
		if len(sum) != 64 {
			return nil, fmt.Errorf("ingest: manifest %s:%d: bad digest %q", path, lineNo, fields[0])
		}
		if _, err := hex.DecodeString(sum); err != nil {
			return nil, fmt.Errorf("ingest: manifest %s:%d: bad digest %q", path, lineNo, fields[0])
		}
		name := strings.TrimPrefix(fields[1], "*")
		man[filepath.Base(name)] = sum
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: manifest %s: %w", path, err)
	}
	if len(man) == 0 {
		return nil, fmt.Errorf("ingest: manifest %s: no entries", path)
	}
	return man, nil
}

// manifestSum looks up the expected digest for path (keyed by base
// name). The second result reports whether verification applies.
func manifestSum(man manifest, path string) (string, bool) {
	if man == nil {
		return "", false
	}
	sum, ok := man[filepath.Base(path)]
	return sum, ok
}

// readURLTable parses the page-metadata sidecar:
// "rawID\turl\tdomain[\tcomma-joined-terms]" per line, '#' and blank
// lines skipped, gzip-transparent. It returns the declared node
// universe as sorted raw IDs plus the metadata aligned to that order
// (i.e. indexed by the dense compacted ID the spiller will assign).
// Duplicate raw IDs are an error — two metadata claims for one page
// cannot be reconciled deterministically.
func readURLTable(path string, man manifest) ([]uint64, []webgraph.PageMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: url table: %w", err)
	}
	defer f.Close()

	var (
		raw    io.Reader = f
		hasher           = sha256.New()
	)
	wantSum, verify := manifestSum(man, path)
	if verify {
		raw = io.TeeReader(f, hasher)
	}
	braw := bufio.NewReaderSize(raw, 1<<20)
	r, err := maybeGunzip(braw)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: url table %s: %w", path, err)
	}

	// Parse straight into the final parallel arrays. A million-page
	// table is tens of MB of retained metadata; a []struct{id, meta}
	// staging slice would transiently double that, and a per-line
	// strings.Split []string header is pure garbage at that scale —
	// both working state the -max-heap-mb discipline exists to avoid.
	var (
		universe []uint64
		metas    []webgraph.PageMeta
		sorted   = true
	)
	tableSize := int64(-1)
	if fi, err := f.Stat(); err == nil {
		tableSize = fi.Size()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var lineNo int64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSuffix(sc.Text(), "\r")
		if line == "" || line[0] == '#' {
			if universe == nil && tableSize >= 0 {
				if n, ok := pagesHint(line); ok {
					// Trust the hint only up to what the file could
					// plausibly hold (a valid row is >= 6 bytes), so a
					// corrupt header cannot force an absurd allocation.
					if max := int(tableSize/6) + 1; n > max {
						n = max
					}
					universe = make([]uint64, 0, n)
					metas = make([]webgraph.PageMeta, 0, n)
				}
			}
			continue
		}
		idf, rest, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, nil, fmt.Errorf("ingest: url table %s:%d: want 3 or 4 tab-separated fields, got 1", path, lineNo)
		}
		urlf, rest, ok2 := strings.Cut(rest, "\t")
		if !ok2 {
			return nil, nil, fmt.Errorf("ingest: url table %s:%d: want 3 or 4 tab-separated fields, got 2", path, lineNo)
		}
		domf, termsf, hasTerms := strings.Cut(rest, "\t")
		if strings.IndexByte(termsf, '\t') >= 0 {
			return nil, nil, fmt.Errorf("ingest: url table %s:%d: want 3 or 4 tab-separated fields, got more", path, lineNo)
		}
		id, err := strconv.ParseUint(idf, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("ingest: url table %s:%d: bad page id %q", path, lineNo, idf)
		}
		if urlf == "" || domf == "" {
			return nil, nil, fmt.Errorf("ingest: url table %s:%d: empty url or domain", path, lineNo)
		}
		meta := webgraph.PageMeta{URL: urlf, Domain: domf}
		if hasTerms && termsf != "" {
			meta.Terms = strings.Split(termsf, ",")
		}
		if len(universe) > 0 && id <= universe[len(universe)-1] {
			sorted = false
		}
		universe = append(universe, id)
		metas = append(metas, meta)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("ingest: url table %s:%d: %w", path, lineNo+1, err)
	}
	if verify {
		if _, err := io.Copy(io.Discard, braw); err != nil {
			return nil, nil, fmt.Errorf("ingest: url table %s: %w", path, err)
		}
		got := hex.EncodeToString(hasher.Sum(nil))
		if got != wantSum {
			return nil, nil, fmt.Errorf("ingest: url table %s: checksum mismatch: manifest %s, file %s", path, wantSum, got)
		}
	}
	if len(universe) == 0 {
		return nil, nil, fmt.Errorf("ingest: url table %s: no pages", path)
	}

	// Exports (and most real sidecars) are already in ascending ID
	// order; sort in place only when the file isn't.
	if !sorted {
		sort.Sort(&tableSorter{ids: universe, metas: metas})
	}
	for i := 1; i < len(universe); i++ {
		if universe[i] == universe[i-1] {
			return nil, nil, fmt.Errorf("ingest: url table %s: duplicate page id %d", path, universe[i])
		}
	}
	return universe, metas, nil
}

// pagesHint parses the "# Pages: N" header comment Export writes
// (mirroring SNAP's "# Nodes: N Edges: M"), letting the reader size
// the table arrays once instead of append-doubling through a
// million-entry growth ladder.
func pagesHint(line string) (int, bool) {
	rest, ok := strings.CutPrefix(line, "# Pages: ")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// tableSorter orders the universe/metas parallel arrays by raw ID
// without a merged staging copy.
type tableSorter struct {
	ids   []uint64
	metas []webgraph.PageMeta
}

func (t *tableSorter) Len() int           { return len(t.ids) }
func (t *tableSorter) Less(i, j int) bool { return t.ids[i] < t.ids[j] }
func (t *tableSorter) Swap(i, j int) {
	t.ids[i], t.ids[j] = t.ids[j], t.ids[i]
	t.metas[i], t.metas[j] = t.metas[j], t.metas[i]
}
