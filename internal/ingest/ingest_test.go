package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snode/internal/webgraph"
)

// writeDataset drops content into its own temp directory (so the
// manifest/URL-table sibling probes see only what the test placed) and
// returns the dataset path.
func writeDataset(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func gzipBytes(t *testing.T, content string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParserHostileInputs is the table-driven gauntlet from the issue:
// comments, CRLF, duplicates, self-loops, sparse 64-bit IDs, and every
// malformed-line shape must either parse to the right graph or fail
// with a line-numbered error.
func TestParserHostileInputs(t *testing.T) {
	cases := []struct {
		name    string
		format  string
		data    string
		wantErr string
		check   func(t *testing.T, c *webgraph.Corpus, st *Stats)
	}{
		{
			name:   "comments and blank lines",
			format: FormatSNAP,
			data:   "# Directed graph\n% matrix-market style comment\n\n0 1\n1 2\n",
			check: func(t *testing.T, c *webgraph.Corpus, st *Stats) {
				if st.Comments != 3 || st.EdgeLines != 2 || st.Edges != 2 || st.Nodes != 3 {
					t.Fatalf("stats = %+v", st)
				}
			},
		},
		{
			name:   "crlf line endings",
			format: FormatSNAP,
			data:   "0\t1\r\n1\t2\r\n",
			check: func(t *testing.T, c *webgraph.Corpus, st *Stats) {
				if st.Edges != 2 || st.Nodes != 3 {
					t.Fatalf("stats = %+v", st)
				}
			},
		},
		{
			name:   "duplicate edges coalesce",
			format: FormatSNAP,
			data:   "0 1\n0 1\n1 0\n0 1\n",
			check: func(t *testing.T, c *webgraph.Corpus, st *Stats) {
				if st.Edges != 2 || st.DupEdges != 2 {
					t.Fatalf("stats = %+v", st)
				}
			},
		},
		{
			name:   "self loops are kept",
			format: FormatSNAP,
			data:   "0 0\n0 1\n",
			check: func(t *testing.T, c *webgraph.Corpus, st *Stats) {
				if st.SelfLoops != 1 || st.Edges != 2 {
					t.Fatalf("stats = %+v", st)
				}
				if out := c.Graph.Out(0); len(out) != 2 || out[0] != 0 || out[1] != 1 {
					t.Fatalf("Out(0) = %v", out)
				}
			},
		},
		{
			name:   "non-contiguous 64-bit ids compact deterministically",
			format: FormatSNAP,
			data:   "5 18446744073709551615\n18446744073709551615 1000000000000\n",
			check: func(t *testing.T, c *webgraph.Corpus, st *Stats) {
				// Dense IDs are ranks in the sorted raw-ID set:
				// 5 -> 0, 1000000000000 -> 1, 2^64-1 -> 2.
				if st.Nodes != 3 || st.Edges != 2 {
					t.Fatalf("stats = %+v", st)
				}
				if out := c.Graph.Out(0); len(out) != 1 || out[0] != 2 {
					t.Fatalf("Out(0) = %v, want [2]", out)
				}
				if out := c.Graph.Out(2); len(out) != 1 || out[0] != 1 {
					t.Fatalf("Out(2) = %v, want [1]", out)
				}
			},
		},
		{
			name:    "snap rejects three fields",
			format:  FormatSNAP,
			data:    "0 1\n0 1 2\n",
			wantErr: ":2:",
		},
		{
			name:    "snap rejects one field",
			format:  FormatSNAP,
			data:    "01\n",
			wantErr: ":1:",
		},
		{
			name:    "non-numeric id",
			format:  FormatSNAP,
			data:    "0 x\n",
			wantErr: "bad target id",
		},
		{
			name:    "negative id",
			format:  FormatSNAP,
			data:    "-1 2\n",
			wantErr: "bad source id",
		},
		{
			name:   "tsv with weights",
			format: FormatTSV,
			data:   "0\t1\t0.5\n1\t2\t3\n",
			check: func(t *testing.T, c *webgraph.Corpus, st *Stats) {
				if st.Edges != 2 || st.Nodes != 3 {
					t.Fatalf("stats = %+v", st)
				}
			},
		},
		{
			name:    "tsv rejects bad weight",
			format:  FormatTSV,
			data:    "0\t1\theavy\n",
			wantErr: "bad weight",
		},
		{
			name:    "tsv rejects four fields",
			format:  FormatTSV,
			data:    "0\t1\t2\t3\n",
			wantErr: "tab-separated",
		},
		{
			name:    "tsv rejects space separation",
			format:  FormatTSV,
			data:    "0 1\n",
			wantErr: "tab-separated",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeDataset(t, "graph.txt", tc.data)
			crawl, st, err := Ingest(context.Background(), path, Options{Format: tc.format})
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !st.SynthesizedMeta {
				t.Fatal("no URL table present, SynthesizedMeta should be set")
			}
			tc.check(t, crawl.Corpus, st)
		})
	}
}

// TestGzipTransparent: the same graph parses identically from plain and
// gzipped bytes.
func TestGzipTransparent(t *testing.T) {
	content := "0 1\n1 2\n2 0\n"
	plainCrawl, plainSt, err := Ingest(context.Background(),
		writeDataset(t, "graph.txt", content), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(t.TempDir(), "graph.txt.gz")
	if err := os.WriteFile(gzPath, gzipBytes(t, content), 0o644); err != nil {
		t.Fatal(err)
	}
	gzCrawl, gzSt, err := Ingest(context.Background(), gzPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plainCrawl.Corpus.Graph.Equal(gzCrawl.Corpus.Graph) {
		t.Fatal("gzip and plain parses diverge")
	}
	if plainSt.Edges != gzSt.Edges || plainSt.Nodes != gzSt.Nodes {
		t.Fatalf("stats diverge: %+v vs %+v", plainSt, gzSt)
	}
}

// TestTruncatedGzip: a cut-off gzip stream is an error, not a silently
// shorter graph.
func TestTruncatedGzip(t *testing.T) {
	var content strings.Builder
	for i := 0; i < 10000; i++ {
		fmt.Fprintf(&content, "%d %d\n", i, i+1)
	}
	gz := gzipBytes(t, content.String())
	path := filepath.Join(t.TempDir(), "graph.txt.gz")
	if err := os.WriteFile(path, gz[:len(gz)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Ingest(context.Background(), path, Options{}); err == nil {
		t.Fatal("truncated gzip ingested without error")
	}
}

// TestChecksum: a sibling manifest verifies the dataset bytes; a wrong
// digest aborts the ingest.
func TestChecksum(t *testing.T) {
	content := "0 1\n1 2\n"
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(content))
	manifest := filepath.Join(dir, DefaultManifest)
	if err := os.WriteFile(manifest,
		[]byte(hex.EncodeToString(sum[:])+"  graph.txt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, err := Ingest(context.Background(), path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.ChecksumVerified {
		t.Fatal("manifest present but ChecksumVerified unset")
	}

	bad := strings.Repeat("0", 64)
	if err := os.WriteFile(manifest, []byte(bad+"  graph.txt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Ingest(context.Background(), path, Options{}); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt manifest: err = %v, want checksum mismatch", err)
	}

	// An explicitly named manifest must exist.
	if _, _, err := Ingest(context.Background(), path, Options{
		Manifest: filepath.Join(dir, "absent.sha256"),
	}); err == nil {
		t.Fatal("missing explicit manifest accepted")
	}
}

// TestURLTableUniverse: the sidecar defines the node set — isolated
// pages exist, unknown edge endpoints are an error.
func TestURLTableUniverse(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.txt")
	if err := os.WriteFile(path, []byte("10 30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	table := "# PageId\tUrl\tDomain\tTerms\n" +
		"30\thttp://b.net/x\tb.net\t\n" +
		"10\thttp://a.com/1\ta.com\tweb,graph\n" +
		"20\thttp://a.com/2\ta.com\t\n"
	if err := os.WriteFile(filepath.Join(dir, DefaultURLTable), []byte(table), 0o644); err != nil {
		t.Fatal(err)
	}
	crawl, st, err := Ingest(context.Background(), path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SynthesizedMeta {
		t.Fatal("URL table present but SynthesizedMeta set")
	}
	// Sorted raw IDs 10, 20, 30 -> dense 0, 1, 2; page 20 is isolated
	// but survives because the table defines the universe.
	if st.Nodes != 3 || st.Edges != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if out := crawl.Corpus.Graph.Out(0); len(out) != 1 || out[0] != 2 {
		t.Fatalf("Out(0) = %v, want [2]", out)
	}
	pages := crawl.Corpus.Pages
	if pages[0].URL != "http://a.com/1" || pages[1].URL != "http://a.com/2" ||
		pages[2].Domain != "b.net" {
		t.Fatalf("pages misaligned: %+v", pages)
	}
	if len(pages[0].Terms) != 2 || pages[0].Terms[0] != "web" {
		t.Fatalf("terms = %v", pages[0].Terms)
	}

	// An endpoint outside the declared universe is an error.
	if err := os.WriteFile(path, []byte("10 30\n10 99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Ingest(context.Background(), path, Options{}); err == nil ||
		!strings.Contains(err.Error(), "not in the URL table") {
		t.Fatalf("unknown endpoint: err = %v", err)
	}
}

// TestSpillMatchesInMemory: a heap budget small enough to force sorted
// runs yields exactly the in-memory graph.
func TestSpillMatchesInMemory(t *testing.T) {
	var content strings.Builder
	// ~50k edges with duplicates sprinkled in, far over a 1 MB budget's
	// buffer when minBudgetEdges applies.
	for i := 0; i < 25000; i++ {
		fmt.Fprintf(&content, "%d %d\n", i%9973, (i*7)%9973)
		fmt.Fprintf(&content, "%d %d\n", (i*3)%9973, i%9973)
	}
	data := content.String()
	ref, refSt, err := Ingest(context.Background(),
		writeDataset(t, "graph.txt", data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if refSt.Runs != 0 {
		t.Fatalf("in-memory mode spilled %d runs", refSt.Runs)
	}
	spilled, st, err := Ingest(context.Background(),
		writeDataset(t, "graph.txt", data), Options{MaxHeapMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs < 2 {
		t.Fatalf("budgeted mode wrote %d runs, want >= 2", st.Runs)
	}
	if st.SpillBytes == 0 {
		t.Fatal("SpillBytes = 0 despite runs")
	}
	if !ref.Corpus.Graph.Equal(spilled.Corpus.Graph) {
		t.Fatal("spilled and in-memory graphs diverge")
	}
	if refSt.Nodes != st.Nodes || refSt.Edges != st.Edges || refSt.DupEdges != st.DupEdges {
		t.Fatalf("stats diverge: %+v vs %+v", refSt, st)
	}
}

// TestSynthesizeMetaStable: synthesized metadata is a pure function of
// (index, pagesPerDomain) — domains are contiguous and directory
// buckets give URL split prefixes to work with.
func TestSynthesizeMetaStable(t *testing.T) {
	a := SynthesizeMeta(100, 40)
	b := SynthesizeMeta(100, 40)
	for i := range a {
		if a[i].URL != b[i].URL || a[i].Domain != b[i].Domain {
			t.Fatalf("meta %d differs between calls", i)
		}
	}
	if a[0].Domain != a[39].Domain || a[0].Domain == a[40].Domain {
		t.Fatalf("domain boundaries wrong: %q %q %q", a[0].Domain, a[39].Domain, a[40].Domain)
	}
	if a[0].URL == a[1].URL {
		t.Fatal("URLs not unique")
	}
}

// TestFormatValidation: unknown formats fail before any file I/O state
// is built up.
func TestFormatValidation(t *testing.T) {
	path := writeDataset(t, "graph.txt", "0 1\n")
	if _, _, err := Ingest(context.Background(), path, Options{Format: "csv"}); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v", err)
	}
}

// TestURLTableSizeHint: the "# Pages: N" header Export writes is a
// preallocation hint only — a lying or junk value must neither change
// what parses nor force an absurd allocation (the hint is clamped by
// the file's plausible row capacity).
func TestURLTableSizeHint(t *testing.T) {
	for _, hint := range []string{
		"# Pages: 2",
		"# Pages: 999999999999999999",
		"# Pages: not-a-number",
		"# Pages: -5",
	} {
		dir := t.TempDir()
		path := filepath.Join(dir, "graph.txt")
		if err := os.WriteFile(path, []byte("0 1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		table := hint + "\n" +
			"0\thttp://a.com/1\ta.com\t\n" +
			"1\thttp://a.com/2\ta.com\t\n"
		if err := os.WriteFile(filepath.Join(dir, DefaultURLTable), []byte(table), 0o644); err != nil {
			t.Fatal(err)
		}
		crawl, st, err := Ingest(context.Background(), path, Options{})
		if err != nil {
			t.Fatalf("%q: %v", hint, err)
		}
		if st.Nodes != 2 || st.Edges != 1 || crawl.Corpus.Pages[1].URL != "http://a.com/2" {
			t.Fatalf("%q: stats = %+v, pages = %+v", hint, st, crawl.Corpus.Pages)
		}
	}
}
