// Export writes a corpus back out in the formats Ingest reads: a
// SNAP-style edge list, the URL-table sidecar carrying every page's
// metadata, and a sha256sum manifest covering both. The round trip
// (synth → Export → Ingest) must rebuild the identical corpus — that
// oracle is what lets the tests and benchmarks exercise the real-graph
// path at 1M pages without a network fetch.
package ingest

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"snode/internal/webgraph"
)

// ExportOptions controls Export. The zero value writes an uncompressed
// graph.txt.
type ExportOptions struct {
	// Gzip compresses the edge list (written as GraphName + ".gz"); the
	// URL table and manifest stay plain so they remain inspectable.
	Gzip bool
	// GraphName is the edge-list base name (default "graph.txt").
	GraphName string
}

// ExportResult reports what Export wrote.
type ExportResult struct {
	GraphPath    string
	URLTablePath string
	ManifestPath string
	Nodes        int
	Edges        int64
}

// Export writes c into dir as edge list + URL table + manifest. Page i
// is exported with raw ID i, so re-ingesting yields the same dense IDs
// and an identical corpus (the crawl visit order is the one thing an
// edge list cannot carry; Ingest substitutes ascending page ID).
func Export(c *webgraph.Corpus, dir string, opt ExportOptions) (*ExportResult, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("ingest: export: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: export: %w", err)
	}
	name := opt.GraphName
	if name == "" {
		name = "graph.txt"
	}
	if opt.Gzip {
		name += ".gz"
	}
	res := &ExportResult{
		GraphPath:    filepath.Join(dir, name),
		URLTablePath: filepath.Join(dir, DefaultURLTable),
		ManifestPath: filepath.Join(dir, DefaultManifest),
		Nodes:        c.Graph.NumPages(),
		Edges:        c.Graph.NumEdges(),
	}

	graphSum, err := writeGraphFile(res.GraphPath, c.Graph, opt.Gzip)
	if err != nil {
		return nil, err
	}
	urlSum, err := writeURLTable(res.URLTablePath, c.Pages)
	if err != nil {
		return nil, err
	}
	mf, err := os.Create(res.ManifestPath)
	if err != nil {
		return nil, fmt.Errorf("ingest: export: %w", err)
	}
	fmt.Fprintf(mf, "%s  %s\n", graphSum, filepath.Base(res.GraphPath))
	fmt.Fprintf(mf, "%s  %s\n", urlSum, filepath.Base(res.URLTablePath))
	if err := mf.Close(); err != nil {
		return nil, fmt.Errorf("ingest: export: %w", err)
	}
	return res, nil
}

// writeGraphFile writes the SNAP-style edge list and returns the hex
// SHA-256 of the on-disk (post-compression) bytes.
func writeGraphFile(path string, g *webgraph.Graph, gz bool) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("ingest: export: %w", err)
	}
	hasher := sha256.New()
	var w io.Writer = io.MultiWriter(f, hasher)
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(w)
		w = zw
	}
	bw := bufio.NewWriterSize(w, 1<<20)

	fmt.Fprintf(bw, "# Directed graph: %s\n", filepath.Base(path))
	fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.NumPages(), g.NumEdges())
	fmt.Fprintf(bw, "# FromNodeId\tToNodeId\n")
	var buf []byte
	for p := 0; p < g.NumPages(); p++ {
		for _, q := range g.Out(webgraph.PageID(p)) {
			buf = strconv.AppendInt(buf[:0], int64(p), 10)
			buf = append(buf, '\t')
			buf = strconv.AppendInt(buf, int64(q), 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				f.Close()
				return "", fmt.Errorf("ingest: export: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return "", fmt.Errorf("ingest: export: %w", err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			f.Close()
			return "", fmt.Errorf("ingest: export: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("ingest: export: %w", err)
	}
	return hex.EncodeToString(hasher.Sum(nil)), nil
}

// writeURLTable writes the page-metadata sidecar and returns its hex
// SHA-256. Metadata containing the format's delimiters (tabs or
// newlines anywhere, commas inside a term) cannot round-trip and is
// rejected rather than silently mangled.
func writeURLTable(path string, pages []webgraph.PageMeta) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("ingest: export: %w", err)
	}
	hasher := sha256.New()
	bw := bufio.NewWriterSize(io.MultiWriter(f, hasher), 1<<20)

	fmt.Fprintf(bw, "# Pages: %d\n", len(pages))
	fmt.Fprintf(bw, "# PageId\tUrl\tDomain\tTerms\n")
	for i, m := range pages {
		if err := checkField(m.URL, "url", i, false); err != nil {
			f.Close()
			return "", err
		}
		if err := checkField(m.Domain, "domain", i, false); err != nil {
			f.Close()
			return "", err
		}
		for _, t := range m.Terms {
			if err := checkField(t, "term", i, true); err != nil {
				f.Close()
				return "", err
			}
		}
		fmt.Fprintf(bw, "%d\t%s\t%s\t%s\n", i, m.URL, m.Domain, strings.Join(m.Terms, ","))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return "", fmt.Errorf("ingest: export: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("ingest: export: %w", err)
	}
	return hex.EncodeToString(hasher.Sum(nil)), nil
}

// checkField rejects metadata the tab-separated sidecar cannot carry.
func checkField(s, what string, page int, isTerm bool) error {
	if strings.ContainsAny(s, "\t\n\r") || (isTerm && (s == "" || strings.Contains(s, ","))) {
		return fmt.Errorf("ingest: export: page %d: %s %q contains a delimiter the url table cannot carry", page, what, s)
	}
	return nil
}
