package webgraph

// Graph algorithms used by the "global access" mining tasks the paper
// motivates (§1.2): strongly connected components (for bow-tie style
// structure analysis), BFS reachability (serial and level-parallel),
// and degree statistics. These run over fully decoded in-memory graphs,
// which is exactly the workload the S-Node compression enables.

import (
	"sync/atomic"

	"snode/internal/workpool"
)

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative, so deep Web graphs do not overflow the goroutine stack).
// It returns a component ID per page (components numbered in reverse
// topological order of the condensation) and the component count.
func SCC(g *Graph) (comp []int32, nComp int) {
	n := g.NumPages()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []PageID // Tarjan's component stack
	var next int32     // next DFS index

	// Explicit DFS frames: vertex + position in its adjacency list.
	type frame struct {
		v   PageID
		idx int
	}
	var frames []frame

	for root := PageID(0); int(root) < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			adj := g.Out(f.v)
			if f.idx < len(adj) {
				w := adj[f.idx]
				f.idx++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				// v is a component root.
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(nComp)
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp, nComp
}

// LargestSCCSize returns the size of the largest strongly connected
// component (the paper's Web graphs have a giant SCC).
func LargestSCCSize(g *Graph) int {
	comp, nComp := SCC(g)
	counts := make([]int, nComp)
	for _, c := range comp {
		counts[c]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return best
}

// BFS performs a breadth-first traversal from the given sources and
// returns the hop distance per page (-1 if unreachable).
func BFS(g *Graph, sources []PageID) []int32 {
	dist := make([]int32, g.NumPages())
	for i := range dist {
		dist[i] = -1
	}
	var queue []PageID
	for _, s := range sources {
		if dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ParallelBFS computes the same hop distances as BFS, expanding each
// frontier level across the shared bounded worker pool (workers <= 0
// uses GOMAXPROCS). The traversal is level-synchronous: every vertex is
// claimed exactly once with a compare-and-swap on its distance, so the
// result is identical to the serial BFS regardless of scheduling — the
// frontier ordering may differ, the distances cannot.
func ParallelBFS(g *Graph, sources []PageID, workers int) []int32 {
	dist := make([]int32, g.NumPages())
	for i := range dist {
		dist[i] = -1
	}
	var frontier []PageID
	for _, s := range sources {
		if dist[s] == -1 {
			dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	pool := workpool.New(workers)
	w := pool.Workers()
	for depth := int32(1); len(frontier) > 0; depth++ {
		chunks := w
		if chunks > len(frontier) {
			chunks = len(frontier)
		}
		per := (len(frontier) + chunks - 1) / chunks
		nexts := make([][]PageID, chunks)
		pool.ForEach(chunks, func(ci int) error {
			lo := ci * per
			hi := lo + per
			if hi > len(frontier) {
				hi = len(frontier)
			}
			if lo >= hi {
				return nil
			}
			var local []PageID
			for _, v := range frontier[lo:hi] {
				for _, t := range g.Out(v) {
					if atomic.CompareAndSwapInt32(&dist[t], -1, depth) {
						local = append(local, t)
					}
				}
			}
			nexts[ci] = local
			return nil
		})
		frontier = frontier[:0]
		for _, l := range nexts {
			frontier = append(frontier, l...)
		}
	}
	return dist
}

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// OutDegreeStats computes min/max/mean out-degree.
func OutDegreeStats(g *Graph) DegreeStats {
	n := g.NumPages()
	if n == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: g.OutDegree(0), Max: g.OutDegree(0)}
	for p := 0; p < n; p++ {
		d := g.OutDegree(PageID(p))
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	s.Mean = g.AvgOutDegree()
	return s
}
