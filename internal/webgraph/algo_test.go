package webgraph

import (
	"math/rand"
	"testing"
)

// TestParallelBFSMatchesSerial: the level-parallel BFS must produce the
// exact distance vector of the serial one — CAS claiming makes the
// result scheduling-independent.
func TestParallelBFSMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(2000)
		g := randomGraph(rng, n, n*4)
		sources := []PageID{PageID(rng.Intn(n))}
		if trial%2 == 1 { // multi-source
			sources = append(sources, PageID(rng.Intn(n)), PageID(rng.Intn(n)))
		}
		want := BFS(g, sources)
		for _, workers := range []int{1, 2, 8} {
			got := ParallelBFS(g, sources, workers)
			if len(got) != len(want) {
				t.Fatalf("trial %d workers %d: %d distances, want %d",
					trial, workers, len(got), len(want))
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d workers %d: dist[%d] = %d, want %d",
						trial, workers, v, got[v], want[v])
				}
			}
		}
	}
}

// TestParallelBFSEmptyAndUnreachable covers the degenerate cases: no
// sources, and vertices unreachable from the sources.
func TestParallelBFSEmptyAndUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	dist := ParallelBFS(g, nil, 4)
	for v, d := range dist {
		if d != -1 {
			t.Fatalf("no sources: dist[%d] = %d, want -1", v, d)
		}
	}
	dist = ParallelBFS(g, []PageID{0}, 4)
	want := []int32{0, 1, -1, -1}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}
