package webgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSample() *Graph {
	// 0 → 1,2 ; 1 → 2 ; 2 → 0 ; 3 → (none) ; 4 → 3
	b := NewBuilder(5)
	b.AddEdge(0, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // duplicate, must coalesce
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(4, 3)
	return b.Build()
}

func TestBuilderSortsAndDedups(t *testing.T) {
	g := buildSample()
	if g.NumPages() != 5 {
		t.Fatalf("NumPages = %d", g.NumPages())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d (duplicate not coalesced?)", g.NumEdges())
	}
	adj := g.Out(0)
	if len(adj) != 2 || adj[0] != 1 || adj[1] != 2 {
		t.Fatalf("Out(0) = %v", adj)
	}
	if len(g.Out(3)) != 0 {
		t.Fatalf("Out(3) = %v", g.Out(3))
	}
}

func TestBuilderPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestHasEdge(t *testing.T) {
	g := buildSample()
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 0) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(1, 0) || g.HasEdge(3, 4) {
		t.Fatal("unexpected edges")
	}
}

func TestOutDegreeAndAvg(t *testing.T) {
	g := buildSample()
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 0 {
		t.Fatal("bad degrees")
	}
	if got := g.AvgOutDegree(); got != 1.0 {
		t.Fatalf("AvgOutDegree = %f", got)
	}
}

func TestInDegrees(t *testing.T) {
	g := buildSample()
	deg := g.InDegrees()
	want := []int32{1, 1, 2, 1, 0}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("InDegrees[%d] = %d, want %d", i, deg[i], want[i])
		}
	}
}

func TestTransposeInvertsEdges(t *testing.T) {
	g := buildSample()
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose edges %d != %d", tr.NumEdges(), g.NumEdges())
	}
	for p := PageID(0); int(p) < g.NumPages(); p++ {
		for _, q := range g.Out(p) {
			if !tr.HasEdge(q, p) {
				t.Fatalf("edge %d→%d missing in transpose", q, p)
			}
		}
	}
	// Double transpose is the identity.
	if !tr.Transpose().Equal(g) {
		t.Fatal("double transpose differs")
	}
}

func TestTransposeListsSorted(t *testing.T) {
	g := buildSample()
	tr := g.Transpose()
	for p := PageID(0); int(p) < tr.NumPages(); p++ {
		adj := tr.Out(p)
		for i := 1; i < len(adj); i++ {
			if adj[i] <= adj[i-1] {
				t.Fatalf("transpose list of %d not sorted: %v", p, adj)
			}
		}
	}
}

func TestNewGraphCSRValidation(t *testing.T) {
	if _, err := NewGraphCSR([]int64{0, 1}, []PageID{0}); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	if _, err := NewGraphCSR([]int64{1, 2}, []PageID{0}); err == nil {
		t.Fatal("offsets not starting at 0 accepted")
	}
	if _, err := NewGraphCSR([]int64{0, 2}, []PageID{0}); err == nil {
		t.Fatal("end mismatch accepted")
	}
	if _, err := NewGraphCSR([]int64{0, 2}, []PageID{1, 0}); err == nil {
		t.Fatal("unsorted adjacency accepted")
	}
	if _, err := NewGraphCSR([]int64{0, 1}, []PageID{5}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestEqual(t *testing.T) {
	a := buildSample()
	b := buildSample()
	if !a.Equal(b) {
		t.Fatal("identical graphs not Equal")
	}
	c := NewBuilder(5)
	c.AddEdge(0, 1)
	if a.Equal(c.Build()) {
		t.Fatal("different graphs Equal")
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(PageID(rng.Intn(n)), PageID(rng.Intn(n)))
	}
	return b.Build()
}

// Property: transpose preserves edge count and inverts every edge.
func TestQuickTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, rng.Intn(40)+2, rng.Intn(200))
		tr := g.Transpose()
		if tr.NumEdges() != g.NumEdges() {
			return false
		}
		for p := PageID(0); int(p) < g.NumPages(); p++ {
			for _, q := range g.Out(p) {
				if !tr.HasEdge(q, p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCSimpleCycle(t *testing.T) {
	g := buildSample() // {0,1,2} form a cycle; 3 and 4 are singletons
	comp, n := SCC(g)
	if n != 3 {
		t.Fatalf("nComp = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle split across components: %v", comp)
	}
	if comp[3] == comp[0] || comp[4] == comp[0] || comp[3] == comp[4] {
		t.Fatalf("singletons merged: %v", comp)
	}
}

func TestSCCDAG(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	_, n := SCC(b.Build())
	if n != 4 {
		t.Fatalf("DAG nComp = %d, want 4", n)
	}
}

func TestSCCReverseTopologicalOrder(t *testing.T) {
	// Tarjan numbers components in reverse topological order: a
	// component reachable from another gets a smaller number.
	b := NewBuilder(4)
	b.AddEdge(0, 1) // comp(1) < comp(0)
	b.AddEdge(2, 3)
	g := b.Build()
	comp, _ := SCC(g)
	if comp[1] >= comp[0] {
		t.Fatalf("expected comp[1] < comp[0], got %v", comp)
	}
	if comp[3] >= comp[2] {
		t.Fatalf("expected comp[3] < comp[2], got %v", comp)
	}
}

func TestSCCLargeCycleIterative(t *testing.T) {
	// A long path+cycle exercises the iterative DFS (a recursive version
	// would be fine too, but this guards against stack regressions).
	const n = 200000
	offsets := make([]int64, n+1)
	targets := make([]PageID, n)
	for i := 0; i < n; i++ {
		offsets[i+1] = int64(i + 1)
		targets[i] = PageID((i + 1) % n)
	}
	g, err := NewGraphCSR(offsets, targets)
	if err != nil {
		t.Fatal(err)
	}
	_, nComp := SCC(g)
	if nComp != 1 {
		t.Fatalf("ring graph nComp = %d, want 1", nComp)
	}
	if LargestSCCSize(g) != n {
		t.Fatal("largest SCC size mismatch")
	}
}

func TestBFSDistances(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	dist := BFS(g, []PageID{0})
	want := []int32{0, 1, 2, 1, 2, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestBFSMultiSource(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	dist := BFS(b.Build(), []PageID{0, 2})
	if dist[1] != 1 || dist[3] != 1 {
		t.Fatalf("multi-source dist = %v", dist)
	}
}

func TestOutDegreeStats(t *testing.T) {
	g := buildSample()
	s := OutDegreeStats(g)
	if s.Min != 0 || s.Max != 2 || s.Mean != 1.0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCorpusValidate(t *testing.T) {
	g := buildSample()
	c := &Corpus{Graph: g, Pages: make([]PageMeta, 5)}
	if err := c.Validate(); err == nil {
		t.Fatal("missing URLs accepted")
	}
	for i := range c.Pages {
		c.Pages[i] = PageMeta{URL: "http://a.com/x", Domain: "a.com"}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid corpus rejected: %v", err)
	}
	c.Pages = c.Pages[:3]
	if err := c.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// Property: two pages share an SCC iff each reaches the other.
func TestQuickSCCMatchesReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		g := randomGraph(rng, n, rng.Intn(3*n))
		comp, _ := SCC(g)
		// All-pairs reachability by BFS from every vertex.
		reach := make([][]int32, n)
		for v := 0; v < n; v++ {
			reach[v] = BFS(g, []PageID{PageID(v)})
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := comp[u] == comp[v]
				mutual := reach[u][v] >= 0 && reach[v][u] >= 0
				if same != mutual {
					t.Logf("seed %d: pages %d,%d: sameSCC=%v mutual=%v", seed, u, v, same, mutual)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
