// Package webgraph defines the in-memory Web graph model shared by every
// representation scheme in this repository: page identifiers, per-page
// metadata (URL, domain, terms), and a compressed-sparse-row directed
// graph with its transpose (the "backlink" graph WGT of the paper).
//
// All representation schemes are built FROM a *Graph and must reproduce
// its adjacency lists exactly; the test suites use that as their central
// cross-representation invariant.
package webgraph

import (
	"errors"
	"fmt"
	"sort"
)

// PageID identifies a page. IDs are dense in [0, NumPages).
type PageID = int32

// Graph is an immutable directed graph in CSR (compressed sparse row)
// form. Adjacency lists are sorted by target ID and contain no
// duplicates.
type Graph struct {
	offsets []int64  // len = n+1
	targets []PageID // len = m
}

// NewGraphCSR wraps pre-built CSR arrays. offsets must have length n+1
// with offsets[0]==0 and be non-decreasing; each adjacency list must be
// strictly increasing. The arrays are retained, not copied.
func NewGraphCSR(offsets []int64, targets []PageID) (*Graph, error) {
	if len(offsets) == 0 || offsets[0] != 0 {
		return nil, errors.New("webgraph: offsets must start at 0")
	}
	if offsets[len(offsets)-1] != int64(len(targets)) {
		return nil, errors.New("webgraph: offsets end mismatch")
	}
	n := int32(len(offsets) - 1)
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, errors.New("webgraph: offsets decrease")
		}
	}
	g := &Graph{offsets: offsets, targets: targets}
	for p := PageID(0); p < n; p++ {
		adj := g.Out(p)
		for i := 1; i < len(adj); i++ {
			if adj[i] <= adj[i-1] {
				return nil, fmt.Errorf("webgraph: page %d adjacency not strictly increasing", p)
			}
		}
		for _, t := range adj {
			if t < 0 || t >= n {
				return nil, fmt.Errorf("webgraph: page %d has out-of-range target %d", p, t)
			}
		}
	}
	return g, nil
}

// NumPages reports the number of vertices.
func (g *Graph) NumPages() int { return len(g.offsets) - 1 }

// NumEdges reports the number of directed edges (hyperlinks).
func (g *Graph) NumEdges() int64 { return int64(len(g.targets)) }

// Out returns page p's adjacency list. The returned slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Out(p PageID) []PageID {
	return g.targets[g.offsets[p]:g.offsets[p+1]]
}

// OutDegree reports the out-degree of p.
func (g *Graph) OutDegree(p PageID) int {
	return int(g.offsets[p+1] - g.offsets[p])
}

// HasEdge reports whether the edge p→q exists.
func (g *Graph) HasEdge(p, q PageID) bool {
	adj := g.Out(p)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= q })
	return i < len(adj) && adj[i] == q
}

// AvgOutDegree reports the mean out-degree (the paper measured 14 for
// the WebBase repository).
func (g *Graph) AvgOutDegree() float64 {
	n := g.NumPages()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// InDegrees computes the in-degree of every page in one pass.
func (g *Graph) InDegrees() []int32 {
	deg := make([]int32, g.NumPages())
	for _, t := range g.targets {
		deg[t]++
	}
	return deg
}

// Transpose returns the backlink graph WGT: edge q→p for every p→q.
func (g *Graph) Transpose() *Graph {
	n := g.NumPages()
	deg := g.InDegrees()
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + int64(deg[i])
	}
	targets := make([]PageID, g.NumEdges())
	next := make([]int64, n)
	copy(next, offsets[:n])
	// Visiting sources in increasing order makes each transposed list
	// sorted automatically.
	for p := PageID(0); p < PageID(n); p++ {
		for _, q := range g.Out(p) {
			targets[next[q]] = p
			next[q]++
		}
	}
	t := &Graph{offsets: offsets, targets: targets}
	return t
}

// Equal reports whether two graphs have identical vertex/edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.NumPages() != o.NumPages() || g.NumEdges() != o.NumEdges() {
		return false
	}
	for i := range g.offsets {
		if g.offsets[i] != o.offsets[i] {
			return false
		}
	}
	for i := range g.targets {
		if g.targets[i] != o.targets[i] {
			return false
		}
	}
	return true
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are coalesced; self-loops are allowed (they occur on the Web).
type Builder struct {
	n   int
	adj [][]PageID
}

// NewBuilder creates a builder for a graph over n pages.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, adj: make([][]PageID, n)}
}

// AddEdge records the link p→q. Out-of-range vertices panic: the caller
// controls ID assignment and a bad ID is a programming error.
func (b *Builder) AddEdge(p, q PageID) {
	if p < 0 || int(p) >= b.n || q < 0 || int(q) >= b.n {
		panic(fmt.Sprintf("webgraph: edge (%d,%d) out of range [0,%d)", p, q, b.n))
	}
	b.adj[p] = append(b.adj[p], q)
}

// OutDegree reports the current (pre-dedup) out-degree of p.
func (b *Builder) OutDegree(p PageID) int { return len(b.adj[p]) }

// Build sorts and deduplicates adjacency lists and returns the graph.
// The builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	offsets := make([]int64, b.n+1)
	var m int64
	for p := 0; p < b.n; p++ {
		lst := b.adj[p]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		// Deduplicate in place.
		k := 0
		for i := range lst {
			if i == 0 || lst[i] != lst[i-1] {
				lst[k] = lst[i]
				k++
			}
		}
		b.adj[p] = lst[:k]
		m += int64(k)
		offsets[p+1] = m
	}
	targets := make([]PageID, m)
	var pos int64
	for p := 0; p < b.n; p++ {
		pos += int64(copy(targets[pos:], b.adj[p]))
		b.adj[p] = nil
	}
	return &Graph{offsets: offsets, targets: targets}
}

// PageMeta is the per-page metadata the indexes and the partitioner
// need. Terms hold normalized tokens (single words and phrase tokens).
type PageMeta struct {
	URL    string
	Domain string // registered domain, e.g. "stanford.edu"
	Terms  []string
}

// Corpus bundles a graph with its page metadata; it is what the crawl
// generator produces and what every representation is built from.
type Corpus struct {
	Graph *Graph
	Pages []PageMeta // indexed by PageID
}

// Validate checks the corpus invariants: metadata length matches the
// graph and every page has a URL and domain.
func (c *Corpus) Validate() error {
	if len(c.Pages) != c.Graph.NumPages() {
		return fmt.Errorf("webgraph: %d pages of metadata for %d-vertex graph",
			len(c.Pages), c.Graph.NumPages())
	}
	for i, p := range c.Pages {
		if p.URL == "" || p.Domain == "" {
			return fmt.Errorf("webgraph: page %d missing URL or domain", i)
		}
	}
	return nil
}
