// Package pagerank computes PageRank by power iteration over the CSR
// Web graph. Queries 1 and 3 weight and select pages by PageRank; the
// paper builds this index in advance with the regular WebBase
// machinery, and so do we (index construction is not part of measured
// navigation time).
package pagerank

import (
	"math"
	"sort"

	"snode/internal/webgraph"
)

// Config controls the computation.
type Config struct {
	Damping    float64 // typically 0.85
	Iterations int     // upper bound
	Tolerance  float64 // L1 convergence threshold (0 = run all iterations)
}

// DefaultConfig matches common practice (and Brin & Page).
func DefaultConfig() Config {
	return Config{Damping: 0.85, Iterations: 40, Tolerance: 1e-9}
}

// Compute returns the PageRank vector (summing to 1). Dangling pages
// distribute their rank uniformly.
func Compute(g *webgraph.Graph, cfg Config) []float64 {
	n := g.NumPages()
	if n == 0 {
		return nil
	}
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		cfg.Damping = 0.85
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 40
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	for it := 0; it < cfg.Iterations; it++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for p := 0; p < n; p++ {
			adj := g.Out(webgraph.PageID(p))
			if len(adj) == 0 {
				dangling += rank[p]
				continue
			}
			share := rank[p] / float64(len(adj))
			for _, q := range adj {
				next[q] += share
			}
		}
		base := (1-cfg.Damping)*inv + cfg.Damping*dangling*inv
		var delta float64
		for i := range next {
			v := base + cfg.Damping*next[i]
			delta += math.Abs(v - rank[i])
			rank[i] = v
		}
		if cfg.Tolerance > 0 && delta < cfg.Tolerance {
			break
		}
	}
	return rank
}

// Normalize scales ranks so the maximum is 1 (the "normalized PageRank
// value" used as page weight in Analysis 1).
func Normalize(rank []float64) []float64 {
	var max float64
	for _, r := range rank {
		if r > max {
			max = r
		}
	}
	if max == 0 {
		return rank
	}
	out := make([]float64, len(rank))
	for i, r := range rank {
		out[i] = r / max
	}
	return out
}

// TopK returns the k highest-ranked pages among candidates (all pages
// when candidates is nil), in descending rank order with ascending ID
// tie-breaks.
func TopK(rank []float64, candidates []webgraph.PageID, k int) []webgraph.PageID {
	var pool []webgraph.PageID
	if candidates == nil {
		pool = make([]webgraph.PageID, len(rank))
		for i := range pool {
			pool[i] = webgraph.PageID(i)
		}
	} else {
		pool = append([]webgraph.PageID(nil), candidates...)
	}
	// Descending rank, ascending ID tie-break; pools are small.
	sort.Slice(pool, func(i, j int) bool {
		a, b := pool[i], pool[j]
		if rank[a] != rank[b] {
			return rank[a] > rank[b]
		}
		return a < b
	})
	if k < len(pool) {
		pool = pool[:k]
	}
	return pool
}
