package pagerank

import (
	"math"
	"testing"

	"snode/internal/webgraph"
)

func TestSumsToOne(t *testing.T) {
	b := webgraph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 0) // page 4 dangling
	g := b.Build()
	rank := Compute(g, DefaultConfig())
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %f", sum)
	}
}

func TestHubGetsHighestRank(t *testing.T) {
	// Everyone points at page 0.
	b := webgraph.NewBuilder(6)
	for p := int32(1); p < 6; p++ {
		b.AddEdge(p, 0)
	}
	rank := Compute(b.Build(), DefaultConfig())
	for p := 1; p < 6; p++ {
		if rank[0] <= rank[p] {
			t.Fatalf("hub rank %f not above page %d rank %f", rank[0], p, rank[p])
		}
	}
}

func TestSymmetricCycleUniform(t *testing.T) {
	const n = 8
	b := webgraph.NewBuilder(n)
	for p := int32(0); p < n; p++ {
		b.AddEdge(p, (p+1)%n)
	}
	rank := Compute(b.Build(), DefaultConfig())
	for p := 1; p < n; p++ {
		if math.Abs(rank[p]-rank[0]) > 1e-9 {
			t.Fatalf("ring ranks differ: %v", rank)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	if got := Compute(webgraph.NewBuilder(0).Build(), DefaultConfig()); got != nil {
		t.Fatalf("empty graph rank = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{0.1, 0.4, 0.2})
	if out[1] != 1.0 {
		t.Fatalf("max not 1: %v", out)
	}
	if math.Abs(out[0]-0.25) > 1e-12 {
		t.Fatalf("scaling wrong: %v", out)
	}
}

func TestTopK(t *testing.T) {
	rank := []float64{0.1, 0.5, 0.3, 0.5, 0.0}
	got := TopK(rank, nil, 3)
	// 1 and 3 tie at 0.5 (ascending ID breaks the tie), then 2.
	want := []webgraph.PageID{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v", got)
		}
	}
	got = TopK(rank, []webgraph.PageID{4, 2}, 10)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("candidate TopK = %v", got)
	}
}

func TestConvergenceStable(t *testing.T) {
	// More iterations must not change a converged result materially.
	b := webgraph.NewBuilder(20)
	for p := int32(0); p < 20; p++ {
		b.AddEdge(p, (p*7+3)%20)
		b.AddEdge(p, (p*3+1)%20)
	}
	g := b.Build()
	cfg := DefaultConfig()
	r1 := Compute(g, cfg)
	cfg.Iterations = 200
	r2 := Compute(g, cfg)
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-6 {
			t.Fatalf("rank %d unstable: %f vs %f", i, r1[i], r2[i])
		}
	}
}
