package trace

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		id      uint64
		sampled bool
	}{
		{1, true}, {1, false}, {12345678901234567, true}, {^uint64(0), true},
	}
	for _, c := range cases {
		v := FormatHeader(c.id, c.sampled)
		id, sampled, ok := ParseHeader(v)
		if !ok || id != c.id || sampled != c.sampled {
			t.Fatalf("round-trip %d/%v: got %d/%v/%v from %q", c.id, c.sampled, id, sampled, ok, v)
		}
	}
}

func TestParseHeaderRejectsMalformed(t *testing.T) {
	for _, v := range []string{
		"", ":", "1", "12", "abc:1", "1:2", "1:", ":1", "0:1", "-1:1", "1;1",
		"99999999999999999999999999:1", // overflows uint64
	} {
		if id, sampled, ok := ParseHeader(v); ok {
			t.Fatalf("ParseHeader(%q) accepted: id=%d sampled=%v", v, id, sampled)
		}
	}
}

// The untraced cross-process path — every shard request reads the
// propagation header, almost always absent — must not allocate. This
// is the trace-layer half of the check-overhead gate; internal/serve
// and internal/router assert the same for their wrappers.
func TestCrossProcessUntracedZeroAlloc(t *testing.T) {
	req, err := http.NewRequest(http.MethodGet, "http://example/out?page=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sink bool
	allocs := testing.AllocsPerRun(200, func() {
		_, sampled, ok := ParseHeader(req.Header.Get(HeaderTrace))
		sink = sampled || ok
	})
	if sink {
		t.Fatal("absent header parsed as present")
	}
	if allocs != 0 {
		t.Fatalf("header read+parse on the untraced path allocates %.1f/op, want 0", allocs)
	}
}

// Canonical header constants: http.Header.Set of the wire spelling and
// Get of the constant must meet, or propagation silently breaks.
func TestHeaderConstantsCanonical(t *testing.T) {
	h := http.Header{}
	h.Set("X-SNode-Trace", "7:1")
	if got := h.Get(HeaderTrace); got != "7:1" {
		t.Fatalf("Get(HeaderTrace) = %q after Set(X-SNode-Trace)", got)
	}
	h.Set("X-SNode-Trace-Id", "9")
	if got := h.Get(HeaderTraceID); got != "9" {
		t.Fatalf("Get(HeaderTraceID) = %q after Set(X-SNode-Trace-Id)", got)
	}
}

func TestStartLinkedForcesTraceWithSamplingDisabled(t *testing.T) {
	tr := New(Config{SampleEvery: 0}) // sampling off: StartRequest never traces
	if ctx, got := tr.StartRequest(context.Background(), "nav"); got != nil || Active(ctx) {
		t.Fatal("SampleEvery=0 sampled a request")
	}
	ctx, forced := tr.StartLinked(context.Background(), "nav", 42)
	if forced == nil || !Active(ctx) {
		t.Fatal("StartLinked did not trace with SampleEvery=0")
	}
	if forced.ParentID != 42 {
		t.Fatalf("ParentID = %d, want 42", forced.ParentID)
	}
	_, sp := Start(ctx, "serve.admission")
	sp.End()
	tr.Finish(forced)
	if got := tr.Get(forced.ID); got == nil {
		t.Fatal("forced trace not retained")
	}
	if s := forced.Summary(); s.ParentID != 42 || s.Spans != 2 {
		t.Fatalf("summary = %+v, want ParentID 42 and 2 spans", s)
	}
}

// Forced traces must not consume slots in the local 1-in-N rotation:
// with SampleEvery=3, two unsampled requests then a forced one must
// leave the very next local request as the third — and sampled.
func TestStartLinkedDoesNotPerturbSamplingRotation(t *testing.T) {
	tr := New(Config{SampleEvery: 3})
	for i := 0; i < 2; i++ {
		if _, got := tr.StartRequest(context.Background(), "nav"); got != nil {
			t.Fatalf("request %d sampled early", i+1)
		}
	}
	_, forced := tr.StartLinked(context.Background(), "nav", 7)
	if forced == nil {
		t.Fatal("StartLinked did not trace")
	}
	_, third := tr.StartRequest(context.Background(), "nav")
	if third == nil {
		t.Fatal("forced trace leaked into the 1-in-N rotation: third local request not sampled")
	}
	if third.ParentID != 0 {
		t.Fatalf("locally sampled trace has ParentID %d", third.ParentID)
	}
}

// An already-traced context must not start a nested trace: the engine's
// internal StartRequest composes into the serve-level forced trace.
func TestStartRequestComposesIntoActiveTrace(t *testing.T) {
	outer := New(Config{SampleEvery: 0})
	inner := New(Config{SampleEvery: 1})
	ctx, forced := outer.StartLinked(context.Background(), "nav", 5)
	if forced == nil {
		t.Fatal("StartLinked did not trace")
	}
	ctx2, nested := inner.StartRequest(ctx, "nav")
	if nested != nil {
		t.Fatal("StartRequest started a nested trace inside an active one")
	}
	if FromContext(ctx2) != forced {
		t.Fatal("context lost the outer trace")
	}
	_, forced2 := inner.StartLinked(ctx, "nav", 6)
	if forced2 != nil {
		t.Fatal("StartLinked started a nested trace inside an active one")
	}
}

func TestAttachRemoteExports(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	ctx, root := tr.StartRequest(context.Background(), "router.mining")
	_, sp := Start(ctx, "router.fanout")
	sp.End()
	tr.Finish(root)
	root.AttachRemote(Remote{
		Label:   "shard0 http://127.0.0.1:1",
		TraceID: 31,
		Start:   root.Start.Add(time.Millisecond),
		Root: &SpanJSON{Name: "nav", DurNs: int64(2 * time.Millisecond), Children: []*SpanJSON{
			{Name: "cache.decode", StartNs: int64(time.Millisecond), DurNs: int64(time.Millisecond),
				Attrs: map[string]int64{"bytes": 128}},
		}},
		Counters: map[string]int64{"decodes": 1},
	})

	j := root.JSON()
	if len(j.Remotes) != 1 || j.Remotes[0].TraceID != 31 {
		t.Fatalf("JSON remotes = %+v", j.Remotes)
	}
	if s := root.Summary(); s.Remotes != 1 {
		t.Fatalf("summary remotes = %d, want 1", s.Remotes)
	}

	var text strings.Builder
	root.Render(&text)
	for _, want := range []string{"remote shard0", "cache.decode", "bytes=128"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("Render missing %q:\n%s", want, text.String())
		}
	}

	var chrome strings.Builder
	if err := WriteChromeTrace(&chrome, root); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"process_name", "shard0 http://127.0.0.1:1", "router trace", "cache.decode", "router.fanout"} {
		if !strings.Contains(chrome.String(), want) {
			t.Fatalf("chrome export missing %q:\n%s", want, chrome.String())
		}
	}
}
