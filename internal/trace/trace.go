// Package trace provides request-scoped execution traces for the
// serving path: a span tree per sampled query, propagated through the
// engine, the S-Node reader, the buffer manager, the worker pool, and
// the simulated disk via context.Context.
//
// The aggregate metrics (internal/metrics) can say "p99 is 40ms"; a
// trace says *why one request was slow* — which supernodes it visited,
// which decodes it led versus waited on, and where the modeled seeks
// and paced stalls landed. The compressed-graph serving literature
// (see PAPERS.md, "Web Graph Compression with Fast Access") makes the
// point this package operationalizes: per-request decode and seek
// behaviour, not averages, decides whether a compressed representation
// can serve traffic.
//
// # Cost model
//
// Tracing is off by default and sampled when on. The untraced hot path
// pays one context.Value lookup and a nil check per instrumentation
// point — no allocations, no atomics, no locks. This is asserted by
// TestTracingPrimitivesUntracedZeroAlloc and by the engine-level
// overhead guard in internal/query (wired into `make check`). Traced
// requests may allocate: they are rare by construction (sampling) and
// buy a full execution tree.
//
// Spans are capped per trace (Config.MaxSpans); beyond the cap new
// spans are counted as dropped rather than recorded, so a pathological
// query cannot balloon a trace. Per-request totals (cache hits,
// decoded bytes, seeks, ...) are kept as fixed atomic counters on the
// trace itself, so they stay exact even when spans drop.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Per-request counter indices (Trace.Counter, Add). Fixed small set so
// the trace can hold them in a flat atomic array: counting never
// allocates, even from concurrent goroutines of one request.
const (
	CtrLookups      = iota // adjacency lookups (OutFiltered calls)
	CtrGraphsNeeded        // lower-level graphs consulted
	CtrCacheHits           // buffer-manager hits
	CtrCacheMisses         // buffer-manager misses
	CtrCoalesced           // misses resolved by another goroutine's decode
	CtrDecodes             // decodes this request led
	CtrDecodedBytes        // encoded bytes this request decoded
	CtrReads               // simulated disk reads
	CtrBytesRead           // bytes transferred
	CtrSeeks               // modeled seeks charged
	CtrStalls              // paced stalls slept
	CtrStallNanos          // wall time slept in paced stalls
	NumCounters
)

// CtrNames maps counter indices to export names.
var CtrNames = [NumCounters]string{
	"lookups", "graphs_needed", "cache_hits", "cache_misses",
	"coalesced", "decodes", "decoded_bytes", "reads", "bytes_read",
	"seeks", "stalls", "stall_nanos",
}

// Attr is one span attribute: a static key and an integer value (the
// serving path's attributes are counts, byte sizes, and nanosecond
// durations; keeping them numeric keeps recording allocation-light).
type Attr struct {
	Key string
	Val int64
}

// maxAttrs bounds attributes per span (fixed array, no per-attr
// allocation). Excess attributes are dropped silently.
const maxAttrs = 6

// span is one node of the tree. Offsets are relative to Trace.Start.
type span struct {
	name   string
	parent int32 // index into Trace.spans; -1 for the root
	start  time.Duration
	dur    time.Duration // -1 while open
	nattrs int32
	attrs  [maxAttrs]Attr
}

// Trace is one request's execution record. Safe for concurrent use:
// spans may be recorded from many goroutines of the same request
// (parallel batched lookups, coalesced waiters).
type Trace struct {
	ID    uint64
	Class string // slow-log class, e.g. "Q3"
	// ParentID, when nonzero, names the remote (router-side) trace this
	// trace is one leg of: the trace was force-sampled by StartLinked
	// because a parent process had already sampled the request.
	ParentID uint64
	Start    time.Time

	maxSpans int

	mu      sync.Mutex
	spans   []span
	dropped int64
	total   time.Duration
	done    bool
	remotes []Remote

	ctrs [NumCounters]atomic.Int64
}

// Remote is a completed span subtree fetched from another process —
// one shard leg of a routed request, stitched under the router trace's
// fanout span. The subtree is stored in exported form: it arrived over
// the wire as the shard's /debug/traces JSON.
type Remote struct {
	// Label names the process lane the subtree renders in, e.g.
	// "shard1 http://127.0.0.1:40213".
	Label string `json:"label"`
	// TraceID is the remote-local trace ID (fetchable from that
	// process's /debug/traces while retained).
	TraceID uint64 `json:"trace_id"`
	// Start is the remote trace's wall-clock start; span offsets in
	// Root are relative to it. Cross-host clock skew shifts the lane,
	// but span durations and nesting stay exact.
	Start time.Time `json:"start"`
	// Root is the remote span tree.
	Root *SpanJSON `json:"root"`
	// Counters are the remote trace's per-request counters.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// AttachRemote stitches a remote subtree onto the trace. Safe to call
// after Finish: remotes are export-side data, fetched once the remote
// leg has answered.
func (t *Trace) AttachRemote(r Remote) {
	if t == nil || r.Root == nil {
		return
	}
	t.mu.Lock()
	t.remotes = append(t.remotes, r)
	t.mu.Unlock()
}

// Remotes returns the stitched remote subtrees.
func (t *Trace) Remotes() []Remote {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Remote, len(t.remotes))
	copy(out, t.remotes)
	return out
}

// Counter reads one per-request counter.
func (t *Trace) Counter(ctr int) int64 { return t.ctrs[ctr].Load() }

// Total returns the finished trace's duration (0 while in flight).
func (t *Trace) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped reports spans discarded over the per-trace cap.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SetAttr attaches an attribute to the trace's root span.
func (t *Trace) SetAttr(key string, v int64) {
	if t == nil {
		return
	}
	t.setAttr(0, key, v)
}

func (t *Trace) startSpan(name string, parent int32, start time.Duration) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		return -1
	}
	t.spans = append(t.spans, span{name: name, parent: parent, start: start, dur: -1})
	return int32(len(t.spans) - 1)
}

func (t *Trace) endSpan(idx int32) {
	now := time.Since(t.Start)
	t.mu.Lock()
	if t.spans[idx].dur < 0 {
		t.spans[idx].dur = now - t.spans[idx].start
	}
	t.mu.Unlock()
}

func (t *Trace) setAttr(idx int32, key string, v int64) {
	t.mu.Lock()
	s := &t.spans[idx]
	// Last write wins for a repeated key; excess distinct keys drop.
	for i := int32(0); i < s.nattrs; i++ {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = v
			t.mu.Unlock()
			return
		}
	}
	if s.nattrs < maxAttrs {
		s.attrs[s.nattrs] = Attr{Key: key, Val: v}
		s.nattrs++
	}
	t.mu.Unlock()
}

// record appends an already-measured span (used for intervals measured
// with explicit timestamps, like queue waits and paced stalls).
func (t *Trace) record(name string, parent int32, start time.Time, dur time.Duration, attrs []Attr) {
	off := start.Sub(t.Start)
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		t.mu.Unlock()
		return
	}
	s := span{name: name, parent: parent, start: off, dur: dur}
	for _, a := range attrs {
		if s.nattrs == maxAttrs {
			break
		}
		s.attrs[s.nattrs] = a
		s.nattrs++
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// ctxKey carries a spanRef in a context. The key is a zero-size type:
// looking it up on an untraced context allocates nothing.
type ctxKey struct{}

type spanRef struct {
	t   *Trace
	idx int32
}

func fromCtx(ctx context.Context) spanRef {
	r, _ := ctx.Value(ctxKey{}).(spanRef)
	return r
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace { return fromCtx(ctx).t }

// Active reports whether ctx carries a trace. Instrumentation points
// use it to skip timestamping and attribute assembly when untraced.
func Active(ctx context.Context) bool { return fromCtx(ctx).t != nil }

// Add bumps a per-request counter; a no-op without a trace in ctx.
func Add(ctx context.Context, ctr int, n int64) {
	if t := fromCtx(ctx).t; t != nil {
		t.ctrs[ctr].Add(n)
	}
}

// Span is a handle to an open span. The zero value is inert: every
// method on it is a nil-check no-op, so instrumented code calls
// End/SetAttr unconditionally.
type Span struct {
	t   *Trace
	idx int32
}

// Start opens a child span under ctx's current span and returns a
// context that parents subsequent spans to it. Without a trace in ctx
// it returns ctx unchanged and an inert Span, allocating nothing.
func Start(ctx context.Context, name string) (context.Context, Span) {
	r := fromCtx(ctx)
	if r.t == nil {
		return ctx, Span{}
	}
	idx := r.t.startSpan(name, r.idx, time.Since(r.t.Start))
	if idx < 0 {
		return ctx, Span{}
	}
	return context.WithValue(ctx, ctxKey{}, spanRef{r.t, idx}), Span{r.t, idx}
}

// RecordSpan records an already-measured interval as a child of ctx's
// current span. Callers on hot paths must guard with Active(ctx): the
// variadic attrs would otherwise allocate per call even untraced.
func RecordSpan(ctx context.Context, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	r := fromCtx(ctx)
	if r.t == nil {
		return
	}
	r.t.record(name, r.idx, start, dur, attrs)
}

// End closes the span (idempotent; only the first End sets duration).
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.endSpan(s.idx)
}

// SetAttr attaches an attribute to the span.
func (s Span) SetAttr(key string, v int64) {
	if s.t == nil {
		return
	}
	s.t.setAttr(s.idx, key, v)
}
