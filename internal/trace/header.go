package trace

import "strconv"

// Cross-process trace propagation (router → shard). The router stamps
// every fan-out leg of a sampled request with HeaderTrace; the shard
// force-samples the leg under its own tracer, finishes the local trace
// before answering, and points back at it with HeaderTraceID so the
// router can fetch the completed span subtree by ID from the shard's
// /debug/traces export and stitch it under its fanout span.
//
// The header constants are spelled in Go's canonical MIME form
// ("X-Snode-Trace" is what http.Header.Set("X-SNode-Trace", ...)
// writes on the wire anyway): http.Header.Get on a pre-canonical key
// returns without allocating, which keeps the untraced request path —
// every shard request reads the header — allocation-free.
const (
	// HeaderTrace is the request header carrying "<trace-id>:<sampled>"
	// from the router to a shard replica (canonical form of
	// X-SNode-Trace).
	HeaderTrace = "X-Snode-Trace"
	// HeaderTraceID is the response header carrying the shard-local
	// trace ID of a force-sampled leg (canonical form of
	// X-SNode-Trace-Id), fetchable at /debug/traces?id=N.
	HeaderTraceID = "X-Snode-Trace-Id"
)

// FormatHeader renders the propagation header value: the parent trace
// ID in decimal plus the sampled bit. Only sampled requests ever carry
// the header, so this allocating formatter stays off the hot path.
func FormatHeader(id uint64, sampled bool) string {
	bit := ":0"
	if sampled {
		bit = ":1"
	}
	return strconv.FormatUint(id, 10) + bit
}

// ParseHeader decodes a propagation header value. The empty string —
// the overwhelmingly common untraced case — returns ok=false after one
// length check with no allocation; malformed values are treated as
// absent (a bad peer must not break serving).
func ParseHeader(v string) (id uint64, sampled bool, ok bool) {
	if len(v) < 3 {
		return 0, false, false
	}
	sep := len(v) - 2
	if v[sep] != ':' {
		return 0, false, false
	}
	switch v[sep+1] {
	case '1':
		sampled = true
	case '0':
		sampled = false
	default:
		return 0, false, false
	}
	id, err := strconv.ParseUint(v[:sep], 10, 64)
	if err != nil || id == 0 {
		return 0, false, false
	}
	return id, sampled, true
}
