package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanTree builds one traced request through the Start/RecordSpan
// primitives and checks the exported tree: parentage, attributes,
// counters, and total.
func TestSpanTree(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	ctx, tc := tr.StartRequest(context.Background(), "q1")
	if tc == nil {
		t.Fatal("SampleEvery=1 must trace every request")
	}
	if !Active(ctx) {
		t.Fatal("derived context must report Active")
	}

	navCtx, nav := Start(ctx, "nav")
	_, read := Start(navCtx, "snode.read_span")
	read.SetAttr("graphs", 3)
	read.SetAttr("bytes", 4096)
	RecordSpan(navCtx, "cache.wait", time.Now(), 2*time.Millisecond, Attr{Key: "gid", Val: 7})
	Add(navCtx, CtrCacheHits, 5)
	Add(navCtx, CtrDecodes, 2)
	read.End()
	nav.End()

	total := tr.Finish(tc)
	if total <= 0 {
		t.Fatalf("Finish returned %v", total)
	}
	if again := tr.Finish(tc); again != total {
		t.Fatalf("Finish not idempotent: %v then %v", total, again)
	}

	j := tc.JSON()
	if j.Root == nil || j.Root.Name != "q1" {
		t.Fatalf("root span = %+v", j.Root)
	}
	if len(j.Root.Children) != 1 || j.Root.Children[0].Name != "nav" {
		t.Fatalf("nav not parented under root: %+v", j.Root.Children)
	}
	navJ := j.Root.Children[0]
	names := map[string]*SpanJSON{}
	for _, c := range navJ.Children {
		names[c.Name] = c
	}
	rs, ok := names["snode.read_span"]
	if !ok {
		t.Fatalf("read_span not under nav: %+v", navJ.Children)
	}
	if rs.Attrs["graphs"] != 3 || rs.Attrs["bytes"] != 4096 {
		t.Fatalf("read_span attrs = %v", rs.Attrs)
	}
	cw, ok := names["cache.wait"]
	if !ok {
		t.Fatalf("cache.wait not under nav: %+v", navJ.Children)
	}
	if cw.Attrs["gid"] != 7 || cw.DurNs != int64(2*time.Millisecond) {
		t.Fatalf("cache.wait = %+v", cw)
	}
	if j.Counters["cache_hits"] != 5 || j.Counters["decodes"] != 2 {
		t.Fatalf("counters = %v", j.Counters)
	}
	if j.TotalNs != int64(total) {
		t.Fatalf("TotalNs %d != total %v", j.TotalNs, total)
	}

	var buf bytes.Buffer
	tc.Render(&buf)
	out := buf.String()
	for _, want := range []string{"q1", "nav", "snode.read_span", "cache.wait", "graphs=3", "cache_hits=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
}

// TestSampling checks the 1-in-N selector and the disabled tracer.
func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 3})
	traced := 0
	for i := 0; i < 9; i++ {
		_, tc := tr.StartRequest(context.Background(), "q1")
		if tc != nil {
			traced++
			tr.Finish(tc)
		}
	}
	if traced != 3 {
		t.Fatalf("SampleEvery=3 over 9 requests traced %d, want 3", traced)
	}

	off := New(Config{SampleEvery: 0})
	ctx, tc := off.StartRequest(context.Background(), "q1")
	if tc != nil || Active(ctx) {
		t.Fatal("SampleEvery=0 must disable tracing")
	}

	var nilTr *Tracer
	if _, tc := nilTr.StartRequest(context.Background(), "x"); tc != nil {
		t.Fatal("nil tracer must be inert")
	}
	if nilTr.Finish(nil) != 0 || nilTr.Get(1) != nil || nilTr.Traces() != nil {
		t.Fatal("nil tracer methods must be inert")
	}
}

// finishAfter forges a finished trace with a chosen duration so slow-log
// ordering is deterministic.
func finishAfter(tr *Tracer, class string, d time.Duration) *Trace {
	_, tc := tr.StartRequest(context.Background(), class)
	tc.mu.Lock()
	tc.done = true
	tc.total = d
	tc.spans[0].dur = d
	tc.mu.Unlock()
	tr.slow.offer(tc)
	return tc
}

// TestSlowLogRetention checks per-class worst-N retention, Get lookup,
// and the recent ring.
func TestSlowLogRetention(t *testing.T) {
	tr := New(Config{SampleEvery: 1, SlowPerClass: 2, Recent: 2})
	t10 := finishAfter(tr, "q1", 10*time.Millisecond)
	t30 := finishAfter(tr, "q1", 30*time.Millisecond)
	t20 := finishAfter(tr, "q1", 20*time.Millisecond)
	t5 := finishAfter(tr, "q1", 5*time.Millisecond)
	other := finishAfter(tr, "q2", 1*time.Millisecond)

	// Worst two of q1 are 30ms and 20ms; 10ms was displaced, and 5ms
	// never qualified — but both of the last two offers sit in the
	// recent ring.
	if tr.Get(t30.ID) == nil || tr.Get(t20.ID) == nil {
		t.Fatal("worst-2 traces must be retained")
	}
	if tr.Get(t10.ID) != nil {
		t.Fatal("displaced trace must be gone (not in worst-2, rotated out of recent)")
	}
	if tr.Get(t5.ID) == nil {
		t.Fatal("most recent offer must be in the recent ring")
	}
	if tr.Get(other.ID) == nil {
		t.Fatal("q2's only trace must be retained in its own class")
	}

	all := tr.Traces()
	for i := 1; i < len(all); i++ {
		if all[i-1].Total() < all[i].Total() {
			t.Fatalf("Traces() not slowest-first: %v then %v", all[i-1].Total(), all[i].Total())
		}
	}
}

// TestSpanCap checks the per-trace span bound: excess spans drop and
// are counted, and recording never fails.
func TestSpanCap(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 4})
	ctx, tc := tr.StartRequest(context.Background(), "q1")
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	tr.Finish(tc)
	if got := len(tc.JSON().Root.Children); got != 3 { // root occupies 1 of 4
		t.Fatalf("retained %d child spans, want 3", got)
	}
	if tc.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tc.Dropped())
	}
}

// TestConcurrentTracing hammers one tracer from 32 goroutines — each
// running its own traced request with spans and counters, all finishing
// into the shared slow-query ring — under the race detector.
func TestConcurrentTracing(t *testing.T) {
	tr := New(Config{SampleEvery: 1, SlowPerClass: 4, Recent: 8})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, tc := tr.StartRequest(context.Background(), fmt.Sprintf("q%d", g%6+1))
			if tc == nil {
				t.Error("request not sampled at SampleEvery=1")
				return
			}
			// Concurrent span recording within the request too.
			var inner sync.WaitGroup
			for w := 0; w < 4; w++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					c, sp := Start(ctx, "worker")
					RecordSpan(c, "item", time.Now(), time.Microsecond, Attr{Key: "n", Val: 1})
					Add(c, CtrLookups, 1)
					sp.SetAttr("k", 1)
					sp.End()
				}()
			}
			inner.Wait()
			tr.Finish(tc)
			if tc.Counter(CtrLookups) != 4 {
				t.Errorf("lookups = %d, want 4", tc.Counter(CtrLookups))
			}
		}(g)
	}
	wg.Wait()
	if len(tr.Traces()) == 0 {
		t.Fatal("no traces retained")
	}
	// Exports must be safe on retained traces as well.
	for _, tc := range tr.Traces() {
		_ = tc.JSON()
		_ = tc.Summary()
	}
}

// TestUntracedPrimitivesZeroAlloc asserts the contract the serving path
// depends on: on a context without a trace, every instrumentation
// primitive allocates nothing.
func TestUntracedPrimitivesZeroAlloc(t *testing.T) {
	ctx := context.Background()
	tr := New(Config{SampleEvery: 1 << 30})
	checks := []struct {
		name string
		fn   func()
	}{
		{"Active", func() { _ = Active(ctx) }},
		{"FromContext", func() { _ = FromContext(ctx) }},
		{"Add", func() { Add(ctx, CtrLookups, 1) }},
		{"Start+End", func() { _, sp := Start(ctx, "x"); sp.End() }},
		{"StartRequest(unsampled)", func() { _, _ = tr.StartRequest(ctx, "q1") }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(200, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f per untraced call, want 0", c.name, n)
		}
	}
}

// TestChromeTraceExport validates the trace_event JSON shape.
func TestChromeTraceExport(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	ctx, tc := tr.StartRequest(context.Background(), "q2")
	c2, sp := Start(ctx, "nav")
	RecordSpan(c2, "iosim.read", time.Now(), time.Millisecond, Attr{Key: "bytes", Val: 512})
	sp.End()
	tr.Finish(tc)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tc, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Ts   float64          `json:"ts"`
			Dur  float64          `json:"dur"`
			Pid  uint64           `json:"pid"`
			Tid  int              `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", e.Name, e.Ph)
		}
		if e.Pid != tc.ID {
			t.Fatalf("event %q pid %d, want trace ID %d", e.Name, e.Pid, tc.ID)
		}
		byName[e.Name] = e.Tid
	}
	if byName["q2"] != 0 || byName["nav"] != 1 || byName["iosim.read"] != 2 {
		t.Fatalf("depth lanes wrong: %v", byName)
	}
}

// TestHandler drives the /debug/traces surface end to end.
func TestHandler(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	ctx, tc := tr.StartRequest(context.Background(), "q5")
	_, sp := Start(ctx, "nav")
	sp.End()
	tr.Finish(tc)
	h := Handler(tr)

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/debug/traces")
	var sums []Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &sums); err != nil || len(sums) != 1 {
		t.Fatalf("list: err=%v body=%s", err, rec.Body.String())
	}
	if sums[0].ID != tc.ID || sums[0].Class != "q5" {
		t.Fatalf("summary = %+v", sums[0])
	}

	rec = get(fmt.Sprintf("/debug/traces?id=%d", tc.ID))
	var detail TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil || detail.Root == nil {
		t.Fatalf("detail: err=%v body=%s", err, rec.Body.String())
	}
	if len(detail.Root.Children) != 1 || detail.Root.Children[0].Name != "nav" {
		t.Fatalf("detail tree = %+v", detail.Root)
	}

	rec = get(fmt.Sprintf("/debug/traces?id=%d&format=chrome", tc.ID))
	if !bytes.Contains(rec.Body.Bytes(), []byte("traceEvents")) {
		t.Fatalf("chrome format: %s", rec.Body.String())
	}
	rec = get(fmt.Sprintf("/debug/traces?id=%d&format=text", tc.ID))
	if !strings.Contains(rec.Body.String(), "q5") {
		t.Fatalf("text format: %s", rec.Body.String())
	}

	if rec = get("/debug/traces?id=99999"); rec.Code != 404 {
		t.Fatalf("missing trace: code %d, want 404", rec.Code)
	}
	if rec = get("/debug/traces?id=bogus"); rec.Code != 400 {
		t.Fatalf("bad id: code %d, want 400", rec.Code)
	}

	// A nil tracer serves an empty list rather than crashing (snserve
	// with -trace-every 0).
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("nil tracer list: code %d", rec.Code)
	}
}

// TestRootAttrAndQueueWait covers SetAttr on the trace root (the
// RunParallel queue-wait attribution path) including after Finish.
func TestRootAttrAndQueueWait(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	_, tc := tr.StartRequest(context.Background(), "q1")
	tr.Finish(tc)
	tc.SetAttr("queue_wait_ns", 12345)
	if got := tc.JSON().Root.Attrs["queue_wait_ns"]; got != 12345 {
		t.Fatalf("root attr = %d", got)
	}
	// nil-trace SetAttr is a no-op.
	var nilT *Trace
	nilT.SetAttr("x", 1)
}
