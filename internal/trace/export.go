package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// snapshotSpans copies the span slice under the trace lock so export
// can walk it without holding writers up.
func (t *Trace) snapshotSpans() ([]span, int64) {
	t.mu.Lock()
	spans := make([]span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()
	return spans, dropped
}

// SpanJSON is one exported span node.
type SpanJSON struct {
	Name     string           `json:"name"`
	StartNs  int64            `json:"start_ns"`
	DurNs    int64            `json:"dur_ns"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*SpanJSON      `json:"children,omitempty"`
}

// TraceJSON is the /debug/traces detail form of a trace.
type TraceJSON struct {
	ID    uint64 `json:"id"`
	Class string `json:"class"`
	// ParentID names the remote parent trace when this trace was
	// force-sampled as one leg of a routed request.
	ParentID uint64           `json:"parent_id,omitempty"`
	Start    time.Time        `json:"start"`
	TotalNs  int64            `json:"total_ns"`
	Dropped  int64            `json:"dropped_spans,omitempty"`
	Counters map[string]int64 `json:"counters"`
	Root     *SpanJSON        `json:"root"`
	// Remotes are stitched per-shard subtrees (router traces only).
	Remotes []Remote `json:"remotes,omitempty"`
}

// Summary is the /debug/traces list form of a trace.
type Summary struct {
	ID       uint64    `json:"id"`
	Class    string    `json:"class"`
	ParentID uint64    `json:"parent_id,omitempty"`
	Start    time.Time `json:"start"`
	TotalNs  int64     `json:"total_ns"`
	Spans    int       `json:"spans"`
	Remotes  int       `json:"remotes,omitempty"`
	Seeks    int64     `json:"seeks"`
	Decodes  int64     `json:"decodes"`
}

// Summary returns the trace's list-view digest.
func (t *Trace) Summary() Summary {
	t.mu.Lock()
	n := len(t.spans)
	total := t.total
	nr := len(t.remotes)
	t.mu.Unlock()
	return Summary{
		ID: t.ID, Class: t.Class, ParentID: t.ParentID, Start: t.Start,
		TotalNs: int64(total), Spans: n, Remotes: nr,
		Seeks: t.Counter(CtrSeeks), Decodes: t.Counter(CtrDecodes),
	}
}

func (s *span) attrMap() map[string]int64 {
	if s.nattrs == 0 {
		return nil
	}
	m := make(map[string]int64, s.nattrs)
	for i := int32(0); i < s.nattrs; i++ {
		m[s.attrs[i].Key] = s.attrs[i].Val
	}
	return m
}

// JSON converts the trace to its exported tree form.
func (t *Trace) JSON() TraceJSON {
	spans, dropped := t.snapshotSpans()
	nodes := make([]*SpanJSON, len(spans))
	for i := range spans {
		s := &spans[i]
		dur := s.dur
		if dur < 0 {
			dur = 0 // still open at snapshot time
		}
		nodes[i] = &SpanJSON{
			Name:    s.name,
			StartNs: int64(s.start),
			DurNs:   int64(dur),
			Attrs:   s.attrMap(),
		}
	}
	for i := range spans {
		if p := spans[i].parent; p >= 0 {
			nodes[p].Children = append(nodes[p].Children, nodes[i])
		}
	}
	ctrs := map[string]int64{}
	for i := 0; i < NumCounters; i++ {
		if v := t.Counter(i); v != 0 {
			ctrs[CtrNames[i]] = v
		}
	}
	return TraceJSON{
		ID: t.ID, Class: t.Class, ParentID: t.ParentID, Start: t.Start,
		TotalNs: int64(t.Total()), Dropped: dropped,
		Counters: ctrs, Root: nodes[0], Remotes: t.Remotes(),
	}
}

// Render writes the span tree as indented text (the snquery -trace
// view): offsets, durations, and attributes per span, then the
// per-request counters.
func (t *Trace) Render(w io.Writer) {
	spans, dropped := t.snapshotSpans()
	children := make([][]int32, len(spans))
	for i := range spans {
		if p := spans[i].parent; p >= 0 {
			children[p] = append(children[p], int32(i))
		}
	}
	fmt.Fprintf(w, "trace %d [%s] total %v\n", t.ID, t.Class, t.Total().Round(time.Microsecond))
	var walk func(idx int32, depth int)
	walk = func(idx int32, depth int) {
		s := &spans[idx]
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
		dur := s.dur
		open := ""
		if dur < 0 {
			dur, open = 0, " (open)"
		}
		fmt.Fprintf(w, "%-20s +%-12v %v%s", s.name,
			s.start.Round(time.Microsecond), dur.Round(time.Microsecond), open)
		for i := int32(0); i < s.nattrs; i++ {
			fmt.Fprintf(w, " %s=%d", s.attrs[i].Key, s.attrs[i].Val)
		}
		io.WriteString(w, "\n")
		for _, c := range children[idx] {
			walk(c, depth+1)
		}
	}
	walk(0, 0)
	if dropped > 0 {
		fmt.Fprintf(w, "(%d spans dropped over the per-trace cap)\n", dropped)
	}
	for i := 0; i < NumCounters; i++ {
		if v := t.Counter(i); v != 0 {
			fmt.Fprintf(w, "  %s=%d", CtrNames[i], v)
		}
	}
	io.WriteString(w, "\n")
	for _, rm := range t.Remotes() {
		fmt.Fprintf(w, "remote %s (trace %d, +%v after router start)\n",
			rm.Label, rm.TraceID, rm.Start.Sub(t.Start).Round(time.Microsecond))
		renderSpanJSON(w, rm.Root, 1)
	}
}

// renderSpanJSON renders an exported (remote) span subtree with the
// same layout Render uses for local spans.
func renderSpanJSON(w io.Writer, s *SpanJSON, depth int) {
	if s == nil {
		return
	}
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	fmt.Fprintf(w, "%-20s +%-12v %v", s.Name,
		time.Duration(s.StartNs).Round(time.Microsecond),
		time.Duration(s.DurNs).Round(time.Microsecond))
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%d", k, s.Attrs[k])
	}
	io.WriteString(w, "\n")
	for _, c := range s.Children {
		renderSpanJSON(w, c, depth+1)
	}
}

// chromeEvent is one trace_event record. Timestamps and durations are
// microseconds, the unit chrome://tracing expects. Args is either a
// span's numeric attribute map or, for "M" metadata events, the string
// map chrome expects (e.g. {"name": "shard1 ..."}).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  uint64  `json:"pid"`
	Tid  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// chromeSpanEvents flattens an exported span subtree into "X" events
// in one pid lane. base is the owning trace's start in microseconds.
func chromeSpanEvents(events []chromeEvent, s *SpanJSON, base float64, pid uint64, depth int) []chromeEvent {
	if s == nil {
		return events
	}
	var args any
	if len(s.Attrs) > 0 {
		args = s.Attrs
	}
	events = append(events, chromeEvent{
		Name: s.Name,
		Ph:   "X",
		Ts:   base + float64(s.StartNs)/1e3,
		Dur:  float64(s.DurNs) / 1e3,
		Pid:  pid,
		Tid:  depth,
		Args: args,
	})
	for _, c := range s.Children {
		events = chromeSpanEvents(events, c, base, pid, depth+1)
	}
	return events
}

// processName emits the "M" metadata event that labels a pid lane.
func processName(pid uint64, name string) chromeEvent {
	return chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]string{"name": name},
	}
}

// WriteChromeTrace writes the traces as Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
// Each trace gets its own pid lane; span depth maps to tid so sibling
// spans from concurrent goroutines stay visually separated. A stitched
// distributed trace additionally gets one pid lane per remote subtree
// (labelled with the shard via process_name metadata), so a routed
// request renders as a router lane over per-shard process lanes
// aligned on wall-clock time.
func WriteChromeTrace(w io.Writer, traces ...*Trace) error {
	var events []chromeEvent
	for _, t := range traces {
		if t == nil {
			continue
		}
		spans, _ := t.snapshotSpans()
		depth := make([]int, len(spans))
		for i := range spans {
			if p := spans[i].parent; p >= 0 {
				depth[i] = depth[p] + 1
			}
		}
		base := float64(t.Start.UnixNano()) / 1e3
		remotes := t.Remotes()
		if len(remotes) > 0 {
			events = append(events, processName(t.ID, fmt.Sprintf("router trace %d [%s]", t.ID, t.Class)))
		}
		for i := range spans {
			s := &spans[i]
			dur := s.dur
			if dur < 0 {
				dur = 0
			}
			var args any
			if m := s.attrMap(); m != nil {
				args = m
			}
			events = append(events, chromeEvent{
				Name: s.name,
				Ph:   "X",
				Ts:   base + float64(s.start)/1e3,
				Dur:  float64(dur) / 1e3,
				Pid:  t.ID,
				Tid:  depth[i],
				Args: args,
			})
		}
		// Remote lanes: pids must not collide with local trace IDs in
		// the same export; local IDs are small sequential counters, so
		// offsetting into the high range keeps lanes distinct.
		for i, rm := range remotes {
			pid := t.ID<<20 | uint64(i+1)
			events = append(events, processName(pid, rm.Label))
			rbase := float64(rm.Start.UnixNano()) / 1e3
			events = chromeSpanEvents(events, rm.Root, rbase, pid, 0)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// Handler serves the tracer's retained traces over HTTP (the snserve
// /debug/traces endpoint):
//
//	/debug/traces                 JSON list of retained trace summaries
//	/debug/traces?id=N            full span tree as JSON
//	/debug/traces?id=N&format=chrome   Chrome trace_event JSON
//	/debug/traces?id=N&format=text     rendered tree, human-readable
func Handler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		idStr := req.URL.Query().Get("id")
		if idStr == "" {
			ts := tr.Traces()
			sums := make([]Summary, 0, len(ts))
			for _, t := range ts {
				sums = append(sums, t.Summary())
			}
			sort.Slice(sums, func(i, j int) bool { return sums[i].TotalNs > sums[j].TotalNs })
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			_ = enc.Encode(sums)
			return
		}
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		t := tr.Get(id)
		if t == nil {
			http.Error(w, "trace not retained (displaced from the slow-query log, or never sampled)", http.StatusNotFound)
			return
		}
		switch req.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, t)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			t.Render(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			_ = enc.Encode(t.JSON())
		}
	})
}
