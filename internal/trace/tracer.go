package trace

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes a Tracer.
type Config struct {
	// SampleEvery traces one request in N (1 traces everything, 0
	// disables sampling — nothing is traced).
	SampleEvery int
	// SlowPerClass is how many worst finished traces the slow-query log
	// retains per class (default 4).
	SlowPerClass int
	// Recent is how many most-recent finished traces are retained in
	// the ring regardless of slowness (default 16), so /debug/traces
	// shows activity even before any tail builds up.
	Recent int
	// MaxSpans caps spans per trace (default 2048).
	MaxSpans int
}

// Tracer decides which requests get traced and retains finished
// traces: a ring of recent ones plus the N worst per query class (the
// slow-query log). Safe for concurrent use; a nil *Tracer is inert.
type Tracer struct {
	sampleEvery int64
	maxSpans    int
	reqs        atomic.Int64
	nextID      atomic.Uint64

	slow slowLog
}

// New builds a tracer. Zero config fields take the documented defaults.
func New(cfg Config) *Tracer {
	if cfg.SlowPerClass <= 0 {
		cfg.SlowPerClass = 4
	}
	if cfg.Recent <= 0 {
		cfg.Recent = 16
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 2048
	}
	return &Tracer{
		sampleEvery: int64(cfg.SampleEvery),
		maxSpans:    cfg.MaxSpans,
		slow: slowLog{
			perClass: cfg.SlowPerClass,
			byClass:  map[string][]*Trace{},
			recent:   make([]*Trace, cfg.Recent),
		},
	}
}

// StartRequest begins a request trace when the sampler selects this
// request, returning a derived context carrying the trace's root span.
// Unsampled requests (and a nil tracer) get the original context back
// with a nil trace — one atomic add, no allocations.
//
// A context that already carries a trace is returned unchanged with a
// nil trace: the outer scope (a force-sampled shard leg, a routed
// request whose handler traced it) owns the trace, and inner
// StartRequest call sites — the engine traces its own entry points —
// compose into it as spans instead of starting a second trace.
func (tr *Tracer) StartRequest(ctx context.Context, class string) (context.Context, *Trace) {
	if tr == nil || tr.sampleEvery <= 0 {
		return ctx, nil
	}
	if Active(ctx) {
		return ctx, nil
	}
	if tr.reqs.Add(1)%tr.sampleEvery != 0 {
		return ctx, nil
	}
	return tr.begin(ctx, class, 0)
}

// StartLinked begins a trace unconditionally — no sampling decision —
// recording parentID as the remote parent (the router-side trace this
// one is a leg of). This is the cross-process force-sampling path: a
// shard must trace a parent-sampled request even when its own
// SampleEvery would never pick it (including SampleEvery = 0, sampling
// disabled), and the forced trace must not consume a slot in the local
// 1-in-N rotation, so the request counter is left untouched.
func (tr *Tracer) StartLinked(ctx context.Context, class string, parentID uint64) (context.Context, *Trace) {
	if tr == nil {
		return ctx, nil
	}
	if Active(ctx) {
		return ctx, nil
	}
	return tr.begin(ctx, class, parentID)
}

func (tr *Tracer) begin(ctx context.Context, class string, parentID uint64) (context.Context, *Trace) {
	t := &Trace{
		ID:       tr.nextID.Add(1),
		Class:    class,
		ParentID: parentID,
		Start:    time.Now(),
		maxSpans: tr.maxSpans,
	}
	t.spans = make([]span, 1, 32)
	t.spans[0] = span{name: class, parent: -1, dur: -1}
	return context.WithValue(ctx, ctxKey{}, spanRef{t, 0}), t
}

// Finish closes the trace's root span and offers the trace to the
// slow-query log; it returns the request's total duration. Idempotent.
// Finish must be called before the trace's ID is published as a
// histogram exemplar, so an exemplar always points at a finished,
// retrievable trace.
func (tr *Tracer) Finish(t *Trace) time.Duration {
	if tr == nil || t == nil {
		return 0
	}
	t.mu.Lock()
	if t.done {
		d := t.total
		t.mu.Unlock()
		return d
	}
	t.done = true
	t.total = time.Since(t.Start)
	t.spans[0].dur = t.total
	t.mu.Unlock()
	tr.slow.offer(t)
	return t.total
}

// Get returns a retained trace by ID, or nil if it was never retained
// or has been displaced.
func (tr *Tracer) Get(id uint64) *Trace {
	if tr == nil {
		return nil
	}
	return tr.slow.get(id)
}

// Traces returns every retained trace (slow log plus recent ring,
// deduplicated), slowest first.
func (tr *Tracer) Traces() []*Trace {
	if tr == nil {
		return nil
	}
	return tr.slow.all()
}

// slowLog retains finished traces: the perClass worst by total
// duration for each class, plus a ring of the most recent ones.
type slowLog struct {
	mu       sync.Mutex
	perClass int
	byClass  map[string][]*Trace // sorted slowest-first
	recent   []*Trace            // ring; next is the overwrite cursor
	next     int
}

func (l *slowLog) offer(t *Trace) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recent) > 0 {
		l.recent[l.next] = t
		l.next = (l.next + 1) % len(l.recent)
	}
	worst := l.byClass[t.Class]
	if len(worst) < l.perClass {
		worst = append(worst, t)
	} else if t.total > worst[len(worst)-1].total {
		worst[len(worst)-1] = t
	} else {
		return
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].total > worst[j].total })
	l.byClass[t.Class] = worst
}

func (l *slowLog) get(id uint64) *Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ts := range l.byClass {
		for _, t := range ts {
			if t.ID == id {
				return t
			}
		}
	}
	for _, t := range l.recent {
		if t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

func (l *slowLog) all() []*Trace {
	l.mu.Lock()
	seen := map[uint64]bool{}
	var out []*Trace
	for _, ts := range l.byClass {
		for _, t := range ts {
			if !seen[t.ID] {
				seen[t.ID] = true
				out = append(out, t)
			}
		}
	}
	for _, t := range l.recent {
		if t != nil && !seen[t.ID] {
			seen[t.ID] = true
			out = append(out, t)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].ID < out[j].ID
	})
	return out
}
