// Package kmeans implements k-means clustering over sparse binary
// vectors, as used by the clustered-split technique (paper §3.2): each
// page in a partition element is represented by the bit vector of
// supernodes it points to, and k-means groups pages whose vectors — and
// hence adjacency lists — are similar.
//
// Vectors are sparse: a point is the sorted list of its set dimensions.
// Centroids are dense within the (small) set of dimensions that occur.
package kmeans

import (
	"errors"
	"sort"

	"snode/internal/randutil"
)

// Point is a sparse binary vector: the sorted list of set dimensions.
type Point []int32

// Config bounds the clustering run, mirroring the paper's use of an
// execution bound with abort ("we place an upper bound on the running
// time of the algorithm and abort the execution if this bound is
// exceeded").
type Config struct {
	K             int // number of clusters
	MaxIterations int // abort bound (stands in for the paper's time bound)
	Seed          uint64
}

// ErrAborted is returned when the iteration bound is hit before
// convergence — the signal the partitioner uses to retry with k+2.
var ErrAborted = errors.New("kmeans: iteration bound exceeded before convergence")

// ErrDegenerate is returned when fewer than two non-empty clusters can
// be formed (all points identical, or k < 2).
var ErrDegenerate = errors.New("kmeans: degenerate clustering")

// Result holds the cluster assignment per input point and the number of
// non-empty clusters, renumbered densely in [0, NumClusters). WithinSS
// and TotalSS report the within-cluster and total sum of squared
// distances; their ratio measures how much structure the clustering
// explains (1.0 = none), which the partitioner uses to reject splits
// that merely chunk a single homogeneous cloud.
type Result struct {
	Assign      []int32
	NumClusters int
	WithinSS    float64
	TotalSS     float64
}

// centroid is dense over the (densified) dimension range that occurs
// in the input. Dense storage matters twice: the inner loop indexes a
// slice instead of hashing map keys, and — critically for the parallel
// partition refiner — every float accumulation below runs in fixed
// index order, so a clustering is a pure function of (points, Config).
// The previous map-backed centroids summed norms in map-iteration
// order, which Go randomizes per run; float addition is not
// associative, so two runs could disagree in the last ulp and, on a
// knife-edge comparison, flip an assignment.
type centroid struct {
	weights []float64 // mean of member vectors
	norm2   float64   // squared L2 norm of the centroid
	count   int
}

// sqDistance computes ||p - c||^2 = |p| + ||c||^2 - 2*dot(p, c), using
// |p| because p is binary.
func sqDistance(p Point, c *centroid) float64 {
	dot := 0.0
	for _, d := range p {
		dot += c.weights[d]
	}
	return float64(len(p)) + c.norm2 - 2*dot
}

// dims returns the dense dimension count: one past the largest set
// dimension across the (sorted) points.
func dims(points []Point) int32 {
	var max int32 = -1
	for _, p := range points {
		if len(p) > 0 && p[len(p)-1] > max {
			max = p[len(p)-1]
		}
	}
	return max + 1
}

// Run clusters the points. Points must be normalized with SortPoint
// first (the dense centroids size themselves from the largest sorted
// dimension). Empty points are valid (pages that point to no other
// supernode) and gravitate to a shared cluster. Run is deterministic:
// the same points and Config produce the same Result on every run and
// under any GOMAXPROCS.
func Run(points []Point, cfg Config) (*Result, error) {
	n := len(points)
	if cfg.K < 2 || n < 2 {
		return nil, ErrDegenerate
	}
	k := cfg.K
	if k > n {
		k = n
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	rng := randutil.NewRNG(cfg.Seed)

	nd := dims(points)

	// Initialization: k distinct points chosen by a k-means++-style
	// spread — pick the first at random, then each next point far from
	// chosen centroids (sampled among a small candidate set for speed).
	cents := make([]*centroid, 0, k)
	addCentroid := func(p Point) {
		c := &centroid{weights: make([]float64, nd), count: 1}
		for _, d := range p {
			c.weights[d] = 1
		}
		c.norm2 = float64(len(p))
		cents = append(cents, c)
	}
	addCentroid(points[rng.Intn(n)])
	for len(cents) < k {
		best, bestDist := -1, -1.0
		for try := 0; try < 8; try++ {
			cand := rng.Intn(n)
			d := sqDistance(points[cand], cents[0])
			for _, c := range cents[1:] {
				if dd := sqDistance(points[cand], c); dd < d {
					d = dd
				}
			}
			if d > bestDist {
				best, bestDist = cand, d
			}
		}
		addCentroid(points[best])
	}

	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}

	converged := false
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		changed := 0
		for i, p := range points {
			best, bestD := 0, sqDistance(p, cents[0])
			for ci := 1; ci < len(cents); ci++ {
				if d := sqDistance(p, cents[ci]); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != int32(best) {
				assign[i] = int32(best)
				changed++
			}
		}
		if changed == 0 {
			converged = true
			break
		}
		// Recompute centroids. All accumulation is in dense index order,
		// keeping the arithmetic bit-reproducible run to run.
		for _, c := range cents {
			for d := range c.weights {
				c.weights[d] = 0
			}
			c.norm2 = 0
			c.count = 0
		}
		for i, p := range points {
			c := cents[assign[i]]
			c.count++
			for _, d := range p {
				c.weights[d]++
			}
		}
		for _, c := range cents {
			if c.count == 0 {
				continue
			}
			inv := 1.0 / float64(c.count)
			for d, w := range c.weights {
				if w == 0 {
					continue
				}
				w *= inv
				c.weights[d] = w
				c.norm2 += w * w
			}
		}
	}

	// Final scatter statistics.
	var withinSS float64
	for i, p := range points {
		withinSS += sqDistance(p, cents[assign[i]])
	}
	global := &centroid{weights: make([]float64, nd), count: n}
	for _, p := range points {
		for _, d := range p {
			global.weights[d]++
		}
	}
	inv := 1.0 / float64(n)
	for d, w := range global.weights {
		if w == 0 {
			continue
		}
		w *= inv
		global.weights[d] = w
		global.norm2 += w * w
	}
	var totalSS float64
	for _, p := range points {
		totalSS += sqDistance(p, global)
	}

	// Renumber non-empty clusters densely.
	remap := map[int32]int32{}
	for _, a := range assign {
		if _, ok := remap[a]; !ok {
			remap[a] = int32(len(remap))
		}
	}
	if len(remap) < 2 {
		return nil, ErrDegenerate
	}
	out := make([]int32, n)
	for i, a := range assign {
		out[i] = remap[a]
	}
	res := &Result{Assign: out, NumClusters: len(remap), WithinSS: withinSS, TotalSS: totalSS}
	if !converged {
		return res, ErrAborted
	}
	return res, nil
}

// SortPoint normalizes a point in place (sorts and deduplicates its
// dimensions) and returns it; builders use this before calling Run.
func SortPoint(p Point) Point {
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	k := 0
	for i := range p {
		if i == 0 || p[i] != p[i-1] {
			p[k] = p[i]
			k++
		}
	}
	return p[:k]
}
