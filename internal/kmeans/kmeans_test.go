package kmeans

import (
	"testing"

	"snode/internal/randutil"
)

// twoBlobs builds points from two well-separated binary clusters:
// cluster A uses dimensions 0..9, cluster B uses 100..109.
func twoBlobs(nA, nB int, seed uint64) ([]Point, []int) {
	rng := randutil.NewRNG(seed)
	var pts []Point
	var truth []int
	for i := 0; i < nA; i++ {
		var p Point
		for d := int32(0); d < 10; d++ {
			if rng.Bool(0.7) {
				p = append(p, d)
			}
		}
		pts = append(pts, p)
		truth = append(truth, 0)
	}
	for i := 0; i < nB; i++ {
		var p Point
		for d := int32(100); d < 110; d++ {
			if rng.Bool(0.7) {
				p = append(p, d)
			}
		}
		pts = append(pts, p)
		truth = append(truth, 1)
	}
	return pts, truth
}

func TestSeparatesTwoBlobs(t *testing.T) {
	pts, truth := twoBlobs(40, 40, 1)
	res, err := Run(pts, Config{K: 2, MaxIterations: 100, Seed: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d", res.NumClusters)
	}
	// All of blob A must share a label, and differ from blob B.
	missed := 0
	a0 := res.Assign[0]
	for i, tr := range truth {
		want := a0
		if tr == 1 {
			want = 1 - a0
		}
		if res.Assign[i] != want {
			missed++
		}
	}
	if missed > 4 {
		t.Fatalf("%d/80 points misclustered", missed)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pts, _ := twoBlobs(30, 30, 3)
	r1, err1 := Run(pts, Config{K: 3, MaxIterations: 50, Seed: 7})
	r2, err2 := Run(pts, Config{K: 3, MaxIterations: 50, Seed: 7})
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("errors differ: %v vs %v", err1, err2)
	}
	if err1 != nil {
		return
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatalf("assignment diverges at %d", i)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := Run(nil, Config{K: 2}); err != ErrDegenerate {
		t.Fatalf("empty input: %v", err)
	}
	if _, err := Run([]Point{{1}, {2}}, Config{K: 1}); err != ErrDegenerate {
		t.Fatalf("k=1: %v", err)
	}
	// All-identical points collapse to one cluster.
	same := []Point{{1, 2}, {1, 2}, {1, 2}, {1, 2}}
	if _, err := Run(same, Config{K: 2, MaxIterations: 50, Seed: 1}); err != ErrDegenerate {
		t.Fatalf("identical points: %v", err)
	}
}

func TestEmptyPointsAllowed(t *testing.T) {
	pts := []Point{{}, {}, {1, 2, 3}, {1, 2, 3}, {1, 2}}
	res, err := Run(pts, Config{K: 2, MaxIterations: 100, Seed: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Assign[0] != res.Assign[1] {
		t.Fatal("two empty points split across clusters")
	}
	if res.Assign[0] == res.Assign[2] {
		t.Fatal("empty and dense points merged")
	}
}

func TestAbortOnIterationBound(t *testing.T) {
	// With MaxIterations=1 on non-trivial data, the first pass changes
	// assignments and cannot also verify convergence → ErrAborted.
	pts, _ := twoBlobs(50, 50, 9)
	_, err := Run(pts, Config{K: 2, MaxIterations: 1, Seed: 11})
	if err != ErrAborted {
		t.Fatalf("got %v, want ErrAborted", err)
	}
}

func TestKLargerThanN(t *testing.T) {
	pts := []Point{{1}, {2}, {3}}
	res, err := Run(pts, Config{K: 10, MaxIterations: 50, Seed: 13})
	if err != nil && err != ErrAborted {
		t.Fatalf("Run: %v", err)
	}
	if res.NumClusters > 3 {
		t.Fatalf("more clusters than points: %d", res.NumClusters)
	}
}

func TestAssignmentsDense(t *testing.T) {
	pts, _ := twoBlobs(20, 20, 17)
	res, err := Run(pts, Config{K: 4, MaxIterations: 100, Seed: 19})
	if err != nil && err != ErrAborted {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, a := range res.Assign {
		if a < 0 || int(a) >= res.NumClusters {
			t.Fatalf("label %d out of range [0,%d)", a, res.NumClusters)
		}
		seen[a] = true
	}
	if len(seen) != res.NumClusters {
		t.Fatalf("labels not dense: %d seen, %d claimed", len(seen), res.NumClusters)
	}
}

func TestSortPoint(t *testing.T) {
	p := SortPoint(Point{5, 1, 3, 1, 5})
	want := Point{1, 3, 5}
	if len(p) != len(want) {
		t.Fatalf("len %d", len(p))
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("got %v", p)
		}
	}
}
