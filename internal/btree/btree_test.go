package btree

import (
	"os"
	"path/filepath"
	"testing"

	"snode/internal/iosim"
	"snode/internal/pager"
	"snode/internal/randutil"
)

func buildTree(t *testing.T, keys []int64) (*Tree, *pager.Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.idx")
	p := pager.Create(path)
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := tr.Insert(k, k*10); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	return tr, p, path
}

func TestInsertGetSmall(t *testing.T) {
	tr, _, _ := buildTree(t, []int64{5, 1, 9, 3, 7})
	for _, k := range []int64{1, 3, 5, 7, 9} {
		v, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		if v != k*10 {
			t.Fatalf("Get(%d) = %d", k, v)
		}
	}
	if _, err := tr.Get(4); err != ErrNotFound {
		t.Fatalf("missing key: %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	tr, _, _ := buildTree(t, []int64{1, 2, 3})
	if err := tr.Insert(2, 999); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get(2)
	if err != nil || v != 999 {
		t.Fatalf("overwrite: %d, %v", v, err)
	}
}

func TestLargeRandomInsertAndValidate(t *testing.T) {
	rng := randutil.NewRNG(42)
	const n = 50000
	keys := make([]int64, n)
	seen := map[int64]bool{}
	for i := range keys {
		for {
			k := rng.Int63() % (1 << 40)
			if !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}
	tr, _, _ := buildTree(t, keys)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 || h > 4 {
		t.Fatalf("height %d unexpected for %d keys with fan-out ~511", h, n)
	}
	for i := 0; i < n; i += 97 {
		v, err := tr.Get(keys[i])
		if err != nil || v != keys[i]*10 {
			t.Fatalf("Get(%d) = %d, %v", keys[i], v, err)
		}
	}
}

func TestSequentialInsert(t *testing.T) {
	// Ascending inserts stress the rightmost-split path.
	const n = 20000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	tr, _, _ := buildTree(t, keys)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 1, 511, 512, 10000, n - 1} {
		if v, err := tr.Get(k); err != nil || v != k*10 {
			t.Fatalf("Get(%d) = %d, %v", k, v, err)
		}
	}
}

func TestScanRange(t *testing.T) {
	keys := make([]int64, 0, 1000)
	for i := 0; i < 1000; i++ {
		keys = append(keys, int64(i*3)) // 0, 3, 6, ...
	}
	tr, _, _ := buildTree(t, keys)
	var got []int64
	err := tr.Scan(10, 40, func(k, v int64) bool {
		got = append(got, k)
		if v != k*10 {
			t.Fatalf("scan value mismatch at %d", k)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{12, 15, 18, 21, 24, 27, 30, 33, 36, 39}
	if len(got) != len(want) {
		t.Fatalf("scan got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan got %v", got)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, _, _ := buildTree(t, []int64{1, 2, 3, 4, 5})
	count := 0
	if err := tr.Scan(0, 100, func(k, v int64) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("early stop after %d", count)
	}
}

func TestScanAcrossLeaves(t *testing.T) {
	// Enough keys to span multiple leaves; the scan must chain them.
	const n = 3000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	tr, _, _ := buildTree(t, keys)
	var prev int64 = -1
	count := 0
	if err := tr.Scan(0, n, func(k, v int64) bool {
		if k != prev+1 {
			t.Fatalf("scan skipped from %d to %d", prev, k)
		}
		prev = k
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scanned %d of %d", count, n)
	}
}

func TestPersistAndReadOnlyOpen(t *testing.T) {
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = int64(i * 7)
	}
	_, p, path := buildTree(t, keys)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	acc := iosim.NewAccountant(iosim.Model2002())
	rp, err := pager.OpenReadOnly(path, acc, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	tr, err := Open(rp)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 7, 7 * 2500, 7 * 4999} {
		v, err := tr.Get(k)
		if err != nil || v != k*10 {
			t.Fatalf("reopened Get(%d) = %d, %v", k, v, err)
		}
	}
	if _, err := tr.Get(1); err != ErrNotFound {
		t.Fatalf("reopened missing key: %v", err)
	}
	if acc.Stats().Reads == 0 {
		t.Fatal("read-only access performed no accounted reads")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after reopen: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.idx")
	p := pager.Create(path)
	if _, _, err := p.Alloc(); err != nil { // meta page of zeros
		t.Fatal(err)
	}
	if _, err := Open(p); err == nil {
		t.Fatal("zero meta page accepted")
	}
}

func TestNegativeKeys(t *testing.T) {
	tr, _, _ := buildTree(t, []int64{-100, -1, 0, 1, 100})
	for _, k := range []int64{-100, -1, 0, 1, 100} {
		if v, err := tr.Get(k); err != nil || v != k*10 {
			t.Fatalf("Get(%d) = %d, %v", k, v, err)
		}
	}
	var got []int64
	if err := tr.Scan(-200, 2, func(k, _ int64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != -100 || got[3] != 1 {
		t.Fatalf("negative scan got %v", got)
	}
}

func TestCorruptPagesError(t *testing.T) {
	keys := make([]int64, 3000)
	for i := range keys {
		keys[i] = int64(i)
	}
	_, p, path := buildTree(t, keys)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every node header in turn: the tree must error, not
	// panic or loop.
	for pg := 1; pg*pager.PageSize < len(raw); pg++ {
		for _, mutate := range []func(b []byte){
			func(b []byte) { b[0] = 0xEE },                        // bad type
			func(b []byte) { b[2], b[3] = 0xFF, 0xFF },            // absurd key count
			func(b []byte) { copy(b[8:16], raw[8:16]); b[8] = 1 }, // bogus child/next
		} {
			buf := append([]byte(nil), raw...)
			mutate(buf[pg*pager.PageSize:])
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			acc := iosim.NewAccountant(iosim.Model2002())
			rp, err := pager.OpenReadOnly(path, acc, 16)
			if err != nil {
				continue
			}
			tr, err := Open(rp)
			if err != nil {
				rp.Close()
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("page %d corruption: panic %v", pg, r)
					}
				}()
				for _, k := range []int64{0, 1500, 2999} {
					_, _ = tr.Get(k)
				}
				_ = tr.Scan(0, 3000, func(_, _ int64) bool { return true })
			}()
			rp.Close()
		}
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
