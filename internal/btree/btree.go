// Package btree implements a disk-resident B+tree over int64 keys with
// fixed 8-byte values, on top of internal/pager. It is the indexing
// substrate of the relational baseline (the paper used "PostgreSQL's
// internal B-tree indexing facilities" for its page-ID and domain
// indexes).
//
// Layout (every node is one 8 KiB page):
//
//	offset 0:  type byte (1 = leaf, 2 = internal)
//	offset 2:  uint16 number of keys
//	offset 8:  int64 next-leaf page number (leaves; -1 terminates)
//	offset 16: entries
//	  leaf:     nkeys × (key int64, value int64)
//	  internal: child0 int64, then nkeys × (key int64, child int64)
//
// Page 0 is the meta page: magic, root page number. Internal-node
// semantics: keys[i] is the smallest key in the subtree of child i+1.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"snode/internal/pager"
)

const (
	nodeLeaf     = 1
	nodeInternal = 2

	headerSize = 16
	entrySize  = 16
	// maxKeys is the node fan-out; both node types fit this many
	// 16-byte entries after the header (internal nodes also store
	// child0 and get one fewer).
	maxKeys = (pager.PageSize - headerSize) / entrySize // 511

	metaMagic = 0x42545245 // "BTRE"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("btree: key not found")

// Tree is a B+tree bound to a pager.
type Tree struct {
	p    *pager.Pager
	root int64
}

type node struct {
	no   int64
	data []byte
}

func (n node) typ() byte     { return n.data[0] }
func (n node) nKeys() int    { return int(binary.LittleEndian.Uint16(n.data[2:])) }
func (n node) setTyp(t byte) { n.data[0] = t }
func (n node) setNKeys(k int) {
	binary.LittleEndian.PutUint16(n.data[2:], uint16(k))
}
func (n node) next() int64 { return int64(binary.LittleEndian.Uint64(n.data[8:])) }
func (n node) setNext(v int64) {
	binary.LittleEndian.PutUint64(n.data[8:], uint64(v))
}

// leaf entry accessors
func (n node) key(i int) int64 {
	return int64(binary.LittleEndian.Uint64(n.data[headerSize+i*entrySize:]))
}
func (n node) val(i int) int64 {
	return int64(binary.LittleEndian.Uint64(n.data[headerSize+i*entrySize+8:]))
}
func (n node) setEntry(i int, k, v int64) {
	binary.LittleEndian.PutUint64(n.data[headerSize+i*entrySize:], uint64(k))
	binary.LittleEndian.PutUint64(n.data[headerSize+i*entrySize+8:], uint64(v))
}

// Internal nodes store entry i as (key_i, child_{i+1}); child0 reuses
// the next-leaf header field, which internals do not otherwise need.
func (n node) child0() int64       { return n.next() }
func (n node) setChild0(v int64)   { n.setNext(v) }
func (n node) childAt(i int) int64 { return n.val(i - 1) } // i >= 1

// New creates an empty tree in a build-mode pager (page 0 = meta,
// page 1 = empty root leaf).
func New(p *pager.Pager) (*Tree, error) {
	metaNo, metaPg, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	if metaNo != 0 {
		return nil, errors.New("btree: meta page must be page 0")
	}
	rootNo, rootPg, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	root := node{no: rootNo, data: rootPg}
	root.setTyp(nodeLeaf)
	root.setNKeys(0)
	root.setNext(-1)
	binary.LittleEndian.PutUint32(metaPg[0:], metaMagic)
	binary.LittleEndian.PutUint64(metaPg[8:], uint64(rootNo))
	return &Tree{p: p, root: rootNo}, nil
}

// Open binds to an existing tree (read-only or build pager).
func Open(p *pager.Pager) (*Tree, error) {
	meta, err := p.Page(0)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(meta[0:]) != metaMagic {
		return nil, errors.New("btree: bad meta magic")
	}
	return &Tree{p: p, root: int64(binary.LittleEndian.Uint64(meta[8:]))}, nil
}

func (t *Tree) node(no int64) (node, error) {
	data, err := t.p.Page(no)
	if err != nil {
		return node{}, err
	}
	n := node{no: no, data: data}
	// Reject structurally impossible nodes so a corrupt page surfaces
	// as an error instead of an out-of-bounds access.
	if typ := n.typ(); typ != nodeLeaf && typ != nodeInternal {
		return node{}, fmt.Errorf("btree: page %d has invalid node type %d", no, typ)
	}
	if k := n.nKeys(); k > maxKeys {
		return node{}, fmt.Errorf("btree: page %d claims %d keys (max %d)", no, k, maxKeys)
	}
	return n, nil
}

// search returns the index of the first key >= k in n (like
// sort.Search over the node's keys).
func (n node) search(k int64) int {
	lo, hi := 0, n.nKeys()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.key(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// maxDepth bounds descents so a corrupt child pointer forming a cycle
// errors out instead of looping.
const maxDepth = 64

// Get returns the value stored under key.
func (t *Tree) Get(key int64) (int64, error) {
	n, err := t.node(t.root)
	if err != nil {
		return 0, err
	}
	for depth := 0; n.typ() == nodeInternal; depth++ {
		if depth >= maxDepth {
			return 0, fmt.Errorf("btree: descent exceeded %d levels", maxDepth)
		}
		i := n.search(key + 1) // child containing keys <= key
		var childNo int64
		if i == 0 {
			childNo = n.child0()
		} else {
			childNo = n.childAt(i)
		}
		if n, err = t.node(childNo); err != nil {
			return 0, err
		}
	}
	i := n.search(key)
	if i < n.nKeys() && n.key(i) == key {
		return n.val(i), nil
	}
	return 0, ErrNotFound
}

// Scan calls fn for every (key, value) with lo <= key < hi, in key
// order, until fn returns false.
func (t *Tree) Scan(lo, hi int64, fn func(key, val int64) bool) error {
	n, err := t.node(t.root)
	if err != nil {
		return err
	}
	for depth := 0; n.typ() == nodeInternal; depth++ {
		if depth >= maxDepth {
			return fmt.Errorf("btree: descent exceeded %d levels", maxDepth)
		}
		i := n.search(lo + 1)
		var childNo int64
		if i == 0 {
			childNo = n.child0()
		} else {
			childNo = n.childAt(i)
		}
		if n, err = t.node(childNo); err != nil {
			return err
		}
	}
	for hops := int64(0); ; hops++ {
		if hops > t.p.NumPages() {
			return fmt.Errorf("btree: leaf chain longer than the file (cycle?)")
		}
		for i := n.search(lo); i < n.nKeys(); i++ {
			k := n.key(i)
			if k >= hi {
				return nil
			}
			if !fn(k, n.val(i)) {
				return nil
			}
		}
		nxt := n.next()
		if nxt < 0 {
			return nil
		}
		if n, err = t.node(nxt); err != nil {
			return err
		}
	}
}

// Insert stores value under key, overwriting any existing value.
// Build-mode pager only.
func (t *Tree) Insert(key, value int64) error {
	promoKey, promoChild, err := t.insert(t.root, key, value)
	if err != nil {
		return err
	}
	if promoChild < 0 {
		return nil
	}
	// Root split: new internal root.
	newRootNo, data, err := t.p.Alloc()
	if err != nil {
		return err
	}
	nr := node{no: newRootNo, data: data}
	nr.setTyp(nodeInternal)
	nr.setNKeys(1)
	nr.setChild0(t.root)
	nr.setEntry(0, promoKey, promoChild)
	t.root = newRootNo
	meta, err := t.p.Page(0)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(meta[8:], uint64(newRootNo))
	return nil
}

// insert descends into page no; on split it returns the promoted key
// and new right sibling (promoChild), else promoChild = -1.
func (t *Tree) insert(no int64, key, value int64) (int64, int64, error) {
	n, err := t.node(no)
	if err != nil {
		return 0, -1, err
	}
	if n.typ() == nodeLeaf {
		i := n.search(key)
		if i < n.nKeys() && n.key(i) == key {
			n.setEntry(i, key, value)
			return 0, -1, nil
		}
		if n.nKeys() < maxKeys {
			leafInsertAt(n, i, key, value)
			return 0, -1, nil
		}
		// Split the leaf.
		rightNo, data, err := t.p.Alloc()
		if err != nil {
			return 0, -1, err
		}
		right := node{no: rightNo, data: data}
		right.setTyp(nodeLeaf)
		mid := (maxKeys + 1) / 2
		moved := n.nKeys() - mid
		for j := 0; j < moved; j++ {
			right.setEntry(j, n.key(mid+j), n.val(mid+j))
		}
		right.setNKeys(moved)
		right.setNext(n.next())
		n.setNKeys(mid)
		n.setNext(rightNo)
		if key >= right.key(0) {
			leafInsertAt(right, right.search(key), key, value)
		} else {
			leafInsertAt(n, n.search(key), key, value)
		}
		return right.key(0), rightNo, nil
	}

	// Internal node.
	i := n.search(key + 1)
	var childNo int64
	if i == 0 {
		childNo = n.child0()
	} else {
		childNo = n.childAt(i)
	}
	promoKey, promoChild, err := t.insert(childNo, key, value)
	if err != nil || promoChild < 0 {
		return 0, -1, err
	}
	if n.nKeys() < maxKeys-1 {
		internalInsertAt(n, i, promoKey, promoChild)
		return 0, -1, nil
	}
	// Split the internal node.
	internalInsertAt(n, i, promoKey, promoChild)
	nk := n.nKeys()
	mid := nk / 2
	upKey := n.key(mid)
	rightNo, data, err := t.p.Alloc()
	if err != nil {
		return 0, -1, err
	}
	right := node{no: rightNo, data: data}
	right.setTyp(nodeInternal)
	right.setChild0(n.val(mid)) // child right of the promoted key
	moved := nk - mid - 1
	for j := 0; j < moved; j++ {
		right.setEntry(j, n.key(mid+1+j), n.val(mid+1+j))
	}
	right.setNKeys(moved)
	n.setNKeys(mid)
	return upKey, rightNo, nil
}

func leafInsertAt(n node, i int, key, value int64) {
	for j := n.nKeys(); j > i; j-- {
		n.setEntry(j, n.key(j-1), n.val(j-1))
	}
	n.setEntry(i, key, value)
	n.setNKeys(n.nKeys() + 1)
}

// internalInsertAt inserts (key, child) so child covers keys >= key;
// position i is where the child pointer for the descent was found.
func internalInsertAt(n node, i int, key int64, child int64) {
	for j := n.nKeys(); j > i; j-- {
		n.setEntry(j, n.key(j-1), n.val(j-1))
	}
	n.setEntry(i, key, child)
	n.setNKeys(n.nKeys() + 1)
}

// Height reports the tree height (diagnostics, tests).
func (t *Tree) Height() (int, error) {
	h := 1
	n, err := t.node(t.root)
	if err != nil {
		return 0, err
	}
	for n.typ() == nodeInternal {
		if n, err = t.node(n.child0()); err != nil {
			return 0, err
		}
		h++
	}
	return h, nil
}

// Validate checks structural invariants: key ordering within nodes,
// leaf chaining, and separator correctness.
func (t *Tree) Validate() error {
	var prevKey int64
	first := true
	seen := 0
	err := t.Scan(-1<<62, 1<<62, func(k, _ int64) bool {
		if !first && k <= prevKey {
			return false
		}
		first = false
		prevKey = k
		seen++
		return true
	})
	if err != nil {
		return err
	}
	return t.validateNode(t.root, -1<<62, 1<<62)
}

func (t *Tree) validateNode(no int64, lo, hi int64) error {
	n, err := t.node(no)
	if err != nil {
		return err
	}
	for i := 0; i < n.nKeys(); i++ {
		k := n.key(i)
		if k < lo || k >= hi {
			return fmt.Errorf("btree: node %d key %d outside [%d,%d)", no, k, lo, hi)
		}
		if i > 0 && k <= n.key(i-1) {
			return fmt.Errorf("btree: node %d keys out of order", no)
		}
	}
	if n.typ() == nodeLeaf {
		return nil
	}
	for i := 0; i <= n.nKeys(); i++ {
		cLo, cHi := lo, hi
		var childNo int64
		if i == 0 {
			childNo = n.child0()
			if n.nKeys() > 0 {
				cHi = n.key(0)
			}
		} else {
			childNo = n.childAt(i)
			cLo = n.key(i - 1)
			if i < n.nKeys() {
				cHi = n.key(i)
			}
		}
		if err := t.validateNode(childNo, cLo, cHi); err != nil {
			return err
		}
	}
	return nil
}
