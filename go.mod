module snode

go 1.22
