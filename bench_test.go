// Benchmarks regenerating the paper's evaluation (§4): one benchmark
// per table and figure, at a reduced scale so `go test -bench=.` stays
// tractable. cmd/snbench runs the full-scale versions and prints the
// complete tables; these benchmarks report the headline metrics via
// b.ReportMetric so regressions in the reproduced shapes are visible in
// benchmark output.
package main

import (
	"io"
	"testing"
	"time"

	"snode/internal/bench"
	"snode/internal/query"
	"snode/internal/repo"
)

func quietQuick() bench.Config {
	cfg := bench.Quick()
	cfg.Out = io.Discard
	return cfg
}

// BenchmarkFig9SupernodeGrowth reproduces Figures 9(a)/9(b): sub-linear
// growth of the supernode graph. Reported metric: supernode growth
// factor across the size series divided by the page growth factor
// (paper: well under 1).
func BenchmarkFig9SupernodeGrowth(b *testing.B) {
	cfg := quietQuick()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Scalability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		pageGrowth := float64(last.Pages) / float64(first.Pages)
		snGrowth := float64(last.Supernodes) / float64(first.Supernodes)
		seGrowth := float64(last.Superedges) / float64(first.Superedges)
		b.ReportMetric(snGrowth/pageGrowth, "supernode-growth-ratio")
		b.ReportMetric(seGrowth/pageGrowth, "superedge-growth-ratio")
		if snGrowth >= pageGrowth {
			b.Fatalf("supernode growth %.2fx not sub-linear vs %.2fx pages", snGrowth, pageGrowth)
		}
	}
}

// BenchmarkFig10SupernodeGraphSize reproduces Figure 10: the supernode
// graph stays a small fraction of the representation.
func BenchmarkFig10SupernodeGraphSize(b *testing.B) {
	cfg := quietQuick()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Scalability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.SupernodeGraphBytes)/(1<<20), "supergraph-MB")
	}
}

// BenchmarkTable1Compression reproduces Table 1: bits/edge for the
// three compressed schemes on WG and WGT. Shape assertions: S-Node and
// Link3 far below Huffman; WGT compresses worse than WG for S-Node.
func BenchmarkTable1Compression(b *testing.B) {
	cfg := quietQuick()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Compression(cfg)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]bench.Table1Row{}
		for _, r := range rows {
			byName[r.Scheme] = r
		}
		b.ReportMetric(byName["snode"].BPE, "snode-bits/edge")
		b.ReportMetric(byName["link3"].BPE, "link3-bits/edge")
		b.ReportMetric(byName["huffman"].BPE, "huffman-bits/edge")
		b.ReportMetric(byName["snode"].BPET, "snode-bits/edge-T")
		if byName["snode"].BPE >= byName["huffman"].BPE {
			b.Fatal("S-Node does not beat plain Huffman")
		}
		if byName["snode"].BPET <= byName["snode"].BPE {
			b.Log("note: WGT compressed better than WG this run (paper expects worse)")
		}
	}
}

// BenchmarkTable2SequentialAccess and BenchmarkTable2RandomAccess
// reproduce Table 2's in-memory decode measurements.
func BenchmarkTable2Access(b *testing.B) {
	cfg := quietQuick()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Access(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SeqNsEdge, r.Scheme+"-seq-ns/edge")
			b.ReportMetric(r.RandNsDecoded, r.Scheme+"-rand-ns/decoded")
		}
	}
}

// BenchmarkFig11Queries reproduces Figure 11: navigation time per query
// per scheme, cold caches. Reported metric: mean reduction vs the next
// best scheme (paper: 73-89% per query).
func BenchmarkFig11Queries(b *testing.B) {
	cfg := quietQuick()
	for i := 0; i < b.N; i++ {
		res, err := bench.Queries(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, q := range query.All() {
			sum += res.Reduction[q]
		}
		b.ReportMetric(sum/6, "mean-reduction-%")
		// The headline shape: S-Node must beat the flat schemes on every
		// query.
		nav := map[query.ID]map[string]time.Duration{}
		for _, c := range res.Cells {
			if nav[c.Query] == nil {
				nav[c.Query] = map[string]time.Duration{}
			}
			nav[c.Query][c.Scheme] = c.Nav
		}
		for _, q := range query.All() {
			if nav[q][repo.SchemeSNode] >= nav[q][repo.SchemeFiles] {
				b.Fatalf("Q%d: snode (%v) not faster than files (%v)",
					q, nav[q][repo.SchemeSNode], nav[q][repo.SchemeFiles])
			}
			if nav[q][repo.SchemeSNode] >= nav[q][repo.SchemeDB] {
				b.Fatalf("Q%d: snode (%v) not faster than db (%v)",
					q, nav[q][repo.SchemeSNode], nav[q][repo.SchemeDB])
			}
		}
	}
}

// BenchmarkFig12BufferSweep reproduces Figure 12: after an initial
// drop, navigation time stays flat once the buffer holds the query's
// working set.
func BenchmarkFig12BufferSweep(b *testing.B) {
	cfg := quietQuick()
	for i := 0; i < b.N; i++ {
		rows, err := bench.BufferSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 3 {
			b.Fatal("sweep too short")
		}
		first := rows[0]
		last := rows[len(rows)-1]
		prev := rows[len(rows)-2]
		for _, q := range []query.ID{query.Q1, query.Q5, query.Q6} {
			if first.Nav[q] < last.Nav[q] {
				b.Logf("Q%d: smallest buffer already optimal (%v vs %v)",
					q, first.Nav[q], last.Nav[q])
			}
			// Flat tail: the two largest budgets (both beyond any query's
			// working set) agree within noise.
			lo, hi := float64(prev.Nav[q]), float64(last.Nav[q])
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo > 0 && hi/lo > 2.0 {
				b.Fatalf("Q%d: curve not flat after working set fits (%v vs %v)",
					q, prev.Nav[q], last.Nav[q])
			}
		}
		b.ReportMetric(float64(last.Nav[query.Q1].Microseconds()), "q1-nav-us")
	}
}

// BenchmarkAblationWindow reproduces the reference-window ablation:
// larger windows compress better.
func BenchmarkAblations(b *testing.B) {
	cfg := quietQuick()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]bench.AblationRow{}
		for _, r := range rows {
			byName[r.Name] = r
		}
		if byName["window-8"].BitsPerEdge >= byName["window-0"].BitsPerEdge {
			b.Fatal("reference encoding did not improve over plain gap coding")
		}
		b.ReportMetric(byName["window-0"].BitsPerEdge-byName["window-8"].BitsPerEdge,
			"refenc-saving-bits/edge")
	}
}

// BenchmarkExactReference reports the Edmonds-vs-window comparison.
func BenchmarkExactReference(b *testing.B) {
	cfg := quietQuick()
	for i := 0; i < b.N; i++ {
		row, err := bench.ExactReference(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if row.Graphs == 0 {
			b.Skip("no intranode graphs in the Edmonds size range")
		}
		b.ReportMetric(row.SavingsPct, "exact-savings-%")
	}
}
